"""Hypothesis properties of USB framing and the stream reassembler."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.daq.stream import SampleStream
from repro.daq.usb import FrameDecoder, FrameEncoder

codes_lists = st.lists(
    st.integers(min_value=-2048, max_value=2047), min_size=1, max_size=300
)


class TestFramingRoundTrip:
    @given(
        codes_lists,
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_round_trip_any_payload(self, codes, element, frame_size):
        enc = FrameEncoder(samples_per_frame=frame_size)
        payload = enc.push(np.array(codes, dtype=np.int16), element)
        payload += enc.flush()
        frames = FrameDecoder().feed(payload)
        got = np.concatenate([f.samples for f in frames])
        assert np.array_equal(got, np.array(codes, dtype=np.int16))
        assert all(f.element == element for f in frames)

    @given(
        codes_lists,
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_fragmentation(self, codes, frame_size, seed):
        enc = FrameEncoder(samples_per_frame=frame_size)
        payload = enc.push(np.array(codes, dtype=np.int16), 0) + enc.flush()
        rng = np.random.default_rng(seed)
        dec = FrameDecoder()
        frames = []
        i = 0
        while i < len(payload):
            step = int(rng.integers(1, 9))
            frames += dec.feed(payload[i : i + step])
            i += step
        got = np.concatenate([f.samples for f in frames])
        assert np.array_equal(got, np.array(codes, dtype=np.int16))

    @given(codes_lists, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_single_corruption_never_fabricates_data(self, codes, seed):
        """Flipping one byte may drop frames but every surviving frame's
        content is genuine."""
        enc = FrameEncoder(samples_per_frame=8)
        payload = bytearray(
            enc.push(np.array(codes, dtype=np.int16), 0) + enc.flush()
        )
        rng = np.random.default_rng(seed)
        pos = int(rng.integers(0, len(payload)))
        payload[pos] ^= 0xA7
        frames = FrameDecoder().feed(bytes(payload))
        truth = np.array(codes, dtype=np.int16)
        # Every decoded frame must be a contiguous slice of the truth at
        # its sequence position (frame k starts at k * 8).
        for f in frames:
            start = f.sequence * 8
            expected = truth[start : start + f.samples.size]
            if expected.size == f.samples.size:
                assert np.array_equal(f.samples, expected)


class TestStreamProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=1, max_value=60),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_per_element_counts_conserved(self, bursts):
        enc = FrameEncoder(samples_per_frame=16)
        payload = b""
        expected: dict[int, int] = {}
        value = 0
        for element, count in bursts:
            codes = np.arange(value, value + count, dtype=np.int16)
            value += count
            payload += enc.push(codes, element)
            expected[element] = expected.get(element, 0) + count
        payload += enc.flush()
        stream = SampleStream()
        stream.ingest(FrameDecoder().feed(payload))
        for element, count in expected.items():
            assert stream.sample_count(element) == count
