"""Hypothesis properties of USB framing and the stream reassembler."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.daq.stream import SampleStream
from repro.daq.usb import FrameDecoder, FrameEncoder

codes_lists = st.lists(
    st.integers(min_value=-2048, max_value=2047), min_size=1, max_size=300
)


class TestFramingRoundTrip:
    @given(
        codes_lists,
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_round_trip_any_payload(self, codes, element, frame_size):
        enc = FrameEncoder(samples_per_frame=frame_size)
        payload = enc.push(np.array(codes, dtype=np.int16), element)
        payload += enc.flush()
        frames = FrameDecoder().feed(payload)
        got = np.concatenate([f.samples for f in frames])
        assert np.array_equal(got, np.array(codes, dtype=np.int16))
        assert all(f.element == element for f in frames)

    @given(
        codes_lists,
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_fragmentation(self, codes, frame_size, seed):
        enc = FrameEncoder(samples_per_frame=frame_size)
        payload = enc.push(np.array(codes, dtype=np.int16), 0) + enc.flush()
        rng = np.random.default_rng(seed)
        dec = FrameDecoder()
        frames = []
        i = 0
        while i < len(payload):
            step = int(rng.integers(1, 9))
            frames += dec.feed(payload[i : i + step])
            i += step
        got = np.concatenate([f.samples for f in frames])
        assert np.array_equal(got, np.array(codes, dtype=np.int16))

    @given(codes_lists, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_single_corruption_never_fabricates_data(self, codes, seed):
        """Flipping one byte may drop frames but every surviving frame's
        content is genuine."""
        enc = FrameEncoder(samples_per_frame=8)
        payload = bytearray(
            enc.push(np.array(codes, dtype=np.int16), 0) + enc.flush()
        )
        rng = np.random.default_rng(seed)
        pos = int(rng.integers(0, len(payload)))
        payload[pos] ^= 0xA7
        frames = FrameDecoder().feed(bytes(payload))
        truth = np.array(codes, dtype=np.int16)
        # Every decoded frame must be a contiguous slice of the truth at
        # its sequence position (frame k starts at k * 8).
        for f in frames:
            start = f.sequence * 8
            expected = truth[start : start + f.samples.size]
            if expected.size == f.samples.size:
                assert np.array_equal(f.samples, expected)


class TestGarbageResync:
    """Corruption accounting: nothing the link mangles goes missing
    silently. ``lost_frames + frames_unaccounted`` must equal the
    number of corrupted frames exactly, for any corruption pattern."""

    def _frames(self, n_frames, spf=8):
        enc = FrameEncoder(samples_per_frame=spf)
        # Sample values in [0, 100]: no payload byte can be 0xA5, so a
        # corrupted region can never fabricate a plausible sync word.
        codes = (np.arange(n_frames * spf) % 101).astype(np.int16)
        payload = enc.push(codes, 0)
        size = 9 + 2 * spf
        return [payload[i : i + size] for i in range(0, len(payload), size)]

    @given(
        st.integers(min_value=2, max_value=30),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_corrupted_frames_exactly_accounted(self, n_frames, data):
        frames = self._frames(n_frames)
        corrupt = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=n_frames - 1),
                min_size=1,
                max_size=n_frames,
            )
        )
        wire = bytearray()
        for k, frame in enumerate(frames):
            if k in corrupt:
                # Zero a mid-frame byte (never creating 0xA5): the CRC
                # must reject the frame and the scan must resync.
                broken = bytearray(frame)
                pos = 4 + (k % (len(frame) - 6))
                broken[pos] = 0x00 if broken[pos] != 0x00 else 0x01
                wire += broken
            else:
                wire += frame
        dec = FrameDecoder()
        dec.expect(0)
        decoded = dec.feed(bytes(wire))
        decoded += dec.finalize()

        assert dec.frames_decoded == n_frames - len(corrupt)
        unaccounted = n_frames - dec.frames_decoded - dec.lost_frames
        # Every corrupted frame is either a counted sequence gap or —
        # when nothing followed it — a conservation shortfall.
        assert dec.lost_frames + unaccounted == len(corrupt)
        # The unaccounted remainder is exactly the trailing corrupted
        # run (no later sequence number exists to reveal it).
        trailing = 0
        for k in range(n_frames - 1, -1, -1):
            if k not in corrupt:
                break
            trailing += 1
        assert unaccounted == trailing
        # Surviving frames carry genuine content at genuine positions.
        for f in decoded:
            assert f.sequence not in corrupt

    @given(
        st.integers(min_value=1, max_value=12),
        st.lists(
            st.binary(min_size=1, max_size=40).map(
                lambda b: bytes(x for x in b if x != 0xA5)
            ),
            min_size=1,
            max_size=6,
        ),
        st.integers(min_value=1, max_value=2**31),
    )
    @settings(max_examples=80, deadline=None)
    def test_interleaved_garbage_always_resyncs(
        self, n_frames, garbage_runs, seed
    ):
        """Garbage *between* intact frames never costs a frame, for any
        garbage content (sans sync bytes) and any chunking."""
        frames = self._frames(n_frames)
        rng = np.random.default_rng(seed)
        wire = bytearray()
        runs = list(garbage_runs)
        for frame in frames:
            if runs and rng.integers(0, 2):
                wire += runs.pop()
            wire += frame
        wire += b"".join(runs)

        dec = FrameDecoder()
        decoded = []
        i = 0
        while i < len(wire):
            step = int(rng.integers(1, 17))
            decoded += dec.feed(bytes(wire[i : i + step]))
            i += step
        decoded += dec.finalize()
        assert len(decoded) == n_frames
        assert dec.lost_frames == 0
        assert [f.sequence for f in decoded] == list(range(n_frames))


class TestStreamProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=1, max_value=60),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_per_element_counts_conserved(self, bursts):
        enc = FrameEncoder(samples_per_frame=16)
        payload = b""
        expected: dict[int, int] = {}
        value = 0
        for element, count in bursts:
            codes = np.arange(value, value + count, dtype=np.int16)
            value += count
            payload += enc.push(codes, element)
            expected[element] = expected.get(element, 0) + count
        payload += enc.flush()
        stream = SampleStream()
        stream.ingest(FrameDecoder().feed(payload))
        for element, count in expected.items():
            assert stream.sample_count(element) == count
