"""Hypothesis properties of the sigma-delta loops."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import NonidealityParams
from repro.sdm.higher_order import HigherOrderSDM
from repro.sdm.modulator import SecondOrderSDM

dc_levels = st.floats(min_value=-0.85, max_value=0.85)


class TestSecondOrderProperties:
    @given(dc_levels)
    @settings(max_examples=25, deadline=None)
    def test_dc_mean_tracks_input(self, level):
        sdm = SecondOrderSDM(
            nonideality=NonidealityParams.ideal(),
            rng=np.random.default_rng(0),
        )
        out = sdm.simulate(np.full(16000, level))
        assert abs(out.mean - level) < 0.02

    @given(dc_levels, st.integers(min_value=1, max_value=5000))
    @settings(max_examples=25, deadline=None)
    def test_chunking_invariance(self, level, split):
        u = np.full(6000, level)
        whole = SecondOrderSDM(
            nonideality=NonidealityParams.ideal(),
            rng=np.random.default_rng(1),
        ).simulate(u).bitstream
        stream = SecondOrderSDM(
            nonideality=NonidealityParams.ideal(),
            rng=np.random.default_rng(1),
        )
        split = min(split, u.size)
        parts = np.concatenate(
            [
                stream.simulate(u[:split]).bitstream,
                stream.simulate(u[split:]).bitstream,
            ]
        )
        assert np.array_equal(whole, parts)

    @given(st.floats(min_value=0.0, max_value=0.7),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_bitstream_always_pm1(self, amplitude, seed):
        rng = np.random.default_rng(seed)
        sdm = SecondOrderSDM(rng=rng)
        u = amplitude * np.sin(2 * np.pi * 0.003 * np.arange(3000))
        bits = sdm.simulate(u).bitstream
        assert set(np.unique(bits)) <= {-1, 1}

    @given(dc_levels)
    @settings(max_examples=20, deadline=None)
    def test_negation_symmetry(self, level):
        """An ideal loop is odd-symmetric: mean(-u) == -mean(u)."""
        a = SecondOrderSDM(
            nonideality=NonidealityParams.ideal(),
            rng=np.random.default_rng(2),
        ).simulate(np.full(16000, level)).mean
        b = SecondOrderSDM(
            nonideality=NonidealityParams.ideal(),
            rng=np.random.default_rng(2),
        ).simulate(np.full(16000, -level)).mean
        assert abs(a + b) < 0.03


class TestHigherOrderProperties:
    @given(
        st.sampled_from([1, 2, 3]),
        st.floats(min_value=-0.4, max_value=0.4),
    )
    @settings(max_examples=25, deadline=None)
    def test_dc_tracking_any_order(self, order, level):
        sdm = HigherOrderSDM(order=order)
        out = sdm.simulate(np.full(16000, level))
        assert abs(float(np.mean(out.bitstream)) - level) < 0.03

    @given(st.sampled_from([1, 2, 3, 4]))
    @settings(max_examples=10, deadline=None)
    def test_zero_input_zero_mean(self, order):
        sdm = HigherOrderSDM(order=order)
        out = sdm.simulate(np.zeros(16000))
        assert abs(float(np.mean(out.bitstream))) < 0.02
