"""Hypothesis properties of the CIC decimator and FIR streaming."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.cic import CICDecimator
from repro.dsp.fir import FIRDecimator, design_compensation_fir


@st.composite
def cic_cases(draw):
    order = draw(st.integers(min_value=1, max_value=4))
    decimation = draw(st.sampled_from([2, 4, 8, 16, 32]))
    n = draw(st.integers(min_value=decimation, max_value=40 * decimation))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return order, decimation, n, seed


class TestCICProperties:
    @given(cic_cases())
    @settings(max_examples=60, deadline=None)
    def test_linearity(self, case):
        """CIC is linear: response to -x is the negation."""
        order, decimation, n, seed = case
        bits = np.random.default_rng(seed).choice([-1, 1], size=n).astype(
            np.int64
        )
        a = CICDecimator(order, decimation, input_bits=2).process(bits)
        b = CICDecimator(order, decimation, input_bits=2).process(-bits)
        assert np.array_equal(a, -b)

    @given(cic_cases(), st.integers(min_value=1, max_value=97))
    @settings(max_examples=60, deadline=None)
    def test_chunking_invariance(self, case, chunk):
        order, decimation, n, seed = case
        bits = np.random.default_rng(seed).choice([-1, 1], size=n).astype(
            np.int64
        )
        whole = CICDecimator(order, decimation, input_bits=2).process(bits)
        stream = CICDecimator(order, decimation, input_bits=2)
        parts = [
            stream.process(bits[i : i + chunk])
            for i in range(0, n, chunk)
        ]
        assert np.array_equal(np.concatenate(parts + [np.zeros(0, np.int64)]), whole)

    @given(
        cic_cases(),
        st.lists(st.integers(min_value=0, max_value=10**6), max_size=6),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_splits_equal_one_shot(self, case, cuts, as_bool):
        """Any partition of the input — uneven, empty, or bool-typed
        pieces — concatenates to the one-shot result."""
        order, decimation, n, seed = case
        bits = np.random.default_rng(seed).integers(0, 2, size=n)
        if as_bool:
            bits = bits.astype(bool)
        whole = CICDecimator(order, decimation, input_bits=2).process(bits)
        stream = CICDecimator(order, decimation, input_bits=2)
        edges = sorted(c % (n + 1) for c in cuts)
        parts = [
            stream.process(piece)
            for piece in np.split(bits, edges)
        ]
        got = np.concatenate(parts + [np.zeros(0, np.int64)])
        assert np.array_equal(got, whole)

    @given(cic_cases())
    @settings(max_examples=40, deadline=None)
    def test_dc_gain_bound(self, case):
        """Outputs never exceed the DC gain for +/-1 inputs."""
        order, decimation, n, seed = case
        bits = np.random.default_rng(seed).choice([-1, 1], size=n).astype(
            np.int64
        )
        out = CICDecimator(order, decimation, input_bits=2).process(bits)
        if out.size:
            assert np.max(np.abs(out)) <= decimation**order


class TestFIRProperties:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=61),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunking_invariance(self, seed, decimation, chunk):
        coeffs = design_compensation_fir(32, 4000.0, 500.0)
        x = np.random.default_rng(seed).integers(-(2**14), 2**14, 300)
        whole = FIRDecimator(coeffs, decimation=decimation).process(x)
        stream = FIRDecimator(coeffs, decimation=decimation)
        parts = [
            stream.process(x[i : i + chunk]) for i in range(0, x.size, chunk)
        ]
        got = np.concatenate(parts + [np.zeros(0, np.int64)])
        assert np.array_equal(got, whole)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_linearity_in_input_scale(self, seed):
        coeffs = design_compensation_fir(32, 4000.0, 500.0)
        x = np.random.default_rng(seed).integers(-(2**12), 2**12, 200)
        a = FIRDecimator(coeffs).process(x)
        b = FIRDecimator(coeffs).process(3 * x)
        assert np.array_equal(b, 3 * a)
