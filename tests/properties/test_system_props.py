"""Hypothesis properties of system-level components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import PASCAL_PER_MMHG
from repro.tonometry.contact import ContactModel
from repro.tonometry.servo import HoldDownServo


class TestContactProperties:
    @given(
        st.floats(min_value=60.0, max_value=140.0),  # MAP mmHg
        st.floats(min_value=0.3, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_transmission_bounded(self, map_mmhg, width):
        model = ContactModel(
            mean_arterial_pressure_pa=map_mmhg * PASCAL_PER_MMHG,
            transmission_width_fraction=width,
        )
        sweep = np.linspace(0.0, 4 * model.optimal_hold_down_pa, 100)
        trans = model.transmission(sweep)
        assert np.all(trans >= 0.0)
        assert np.all(trans <= 1.0)

    @given(st.floats(min_value=60.0, max_value=140.0))
    @settings(max_examples=30, deadline=None)
    def test_optimum_is_argmax(self, map_mmhg):
        model = ContactModel(
            mean_arterial_pressure_pa=map_mmhg * PASCAL_PER_MMHG
        )
        opt = model.optimal_hold_down_pa
        sweep = np.linspace(0.2 * opt, 3 * opt, 301)
        trans = model.transmission(sweep)
        best = sweep[int(np.argmax(trans))]
        assert abs(best - opt) < 0.15 * opt


class TestServoProperties:
    @given(
        st.floats(min_value=6e3, max_value=25e3),  # optimum position
        st.floats(min_value=1e3, max_value=6e3),  # bump width
    )
    @settings(max_examples=30, deadline=None)
    def test_finds_any_unimodal_peak(self, center, width):
        """The servo must find the peak of ANY noiseless unimodal bump
        inside its range."""

        def oracle(p: float) -> float:
            return float(np.exp(-((p - center) ** 2) / (2 * width**2)))

        servo = HoldDownServo(
            min_pa=3e3, max_pa=30e3, coarse_points=14,
            refine_tolerance_pa=100.0,
        )
        result = servo.search(oracle)
        # Within the coarse grid spacing of the true peak.
        grid_step = (30e3 - 3e3) / 13
        assert abs(result.optimal_hold_down_pa - center) < grid_step

    @given(
        st.floats(min_value=6e3, max_value=25e3),
        st.floats(min_value=3e3, max_value=28e3),
    )
    @settings(max_examples=30, deadline=None)
    def test_track_never_leaves_bounds(self, center, start):
        def oracle(p: float) -> float:
            return float(np.exp(-((p - center) ** 2) / (2 * 3e3**2)))

        servo = HoldDownServo(min_pa=3e3, max_pa=30e3)
        current = start
        for _ in range(10):
            current = servo.track(oracle, current, step_pa=2e3)
            assert 3e3 <= current <= 30e3


class TestCuffProperties:
    @given(
        st.floats(min_value=100.0, max_value=170.0),
        st.floats(min_value=55.0, max_value=95.0),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=10, deadline=None)
    def test_cuff_clinically_accurate_everywhere(self, sys, dia, seed):
        """AAMI-style property: sys/dia estimates within 10 mmHg across
        the physiologic range (any patient, any seed)."""
        if sys - dia < 25.0:
            return  # implausibly narrow pulse pressure
        from repro.baselines.cuff import OscillometricCuff
        from repro.params import PatientParams
        from repro.physiology.patient import VirtualPatient

        patient = VirtualPatient(
            PatientParams(systolic_mmhg=sys, diastolic_mmhg=dia),
            rng=np.random.default_rng(seed),
        )
        reading = OscillometricCuff().measure(
            patient, rng=np.random.default_rng(seed + 1)
        )
        assert abs(reading.systolic_mmhg - sys) < 10.0
        assert abs(reading.diastolic_mmhg - dia) < 10.0
