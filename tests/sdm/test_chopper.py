"""Chopper stabilization: flicker suppression."""

import numpy as np
import pytest

from repro.dsp.cic import CICDecimator
from repro.dsp.spectrum import analyze_tone, coherent_tone_frequency
from repro.errors import ConfigurationError
from repro.params import ModulatorParams, NonidealityParams
from repro.sdm.chopper import ChoppedSecondOrderSDM

# A deliberately flicker-dominated front end (small cap raises the white
# floor the flicker normalization anchors to; 20 kHz corner puts serious
# 1/f power in band).
FLICKERY = NonidealityParams(
    sampling_cap_f=0.1e-12,
    opamp_gain=1e12,
    clock_jitter_s=0.0,
    flicker_corner_hz=20000.0,
)


def snr_of(chopped: bool, osr=64, n_out=1024, seed=4) -> float:
    fs = 128e3
    out_rate = fs / osr
    tone = coherent_tone_frequency(out_rate / 50, out_rate, n_out)
    t = np.arange((n_out + 16) * osr) / fs
    sdm = ChoppedSecondOrderSDM(
        ModulatorParams(osr=osr),
        FLICKERY,
        enabled=chopped,
        rng=np.random.default_rng(seed),
    )
    bits = sdm.simulate(0.5 * np.sin(2 * np.pi * tone * t)).bitstream
    cic = CICDecimator(order=3, decimation=osr, input_bits=2)
    vals = (cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain)[
        16 : 16 + n_out
    ]
    return analyze_tone(vals, out_rate, tone_hz=tone).snr_db


class TestChopping:
    def test_chopping_recovers_flicker_loss(self):
        """On the flicker-dominated front end, chopping at fs/2 must buy
        several dB of in-band SNR (measured: ~8 dB)."""
        assert snr_of(True) > snr_of(False) + 4.0

    def test_chop_sequence_alternates(self):
        sdm = ChoppedSecondOrderSDM(chop_divider=2)
        seq = sdm.chop_sequence(8)
        assert np.array_equal(seq, [1, -1, 1, -1, 1, -1, 1, -1])

    def test_chop_divider_4(self):
        sdm = ChoppedSecondOrderSDM(chop_divider=4)
        seq = sdm.chop_sequence(8)
        assert np.array_equal(seq, [1, 1, -1, -1, 1, 1, -1, -1])

    def test_disabled_matches_plain_loop(self):
        """With chopping disabled and no flicker, the wrapper is exactly
        the plain loop."""
        from repro.sdm.modulator import SecondOrderSDM

        ni = NonidealityParams.ideal()
        u = 0.4 * np.sin(2 * np.pi * 0.002 * np.arange(10000))
        wrapped = ChoppedSecondOrderSDM(
            ModulatorParams(), ni, enabled=False,
            rng=np.random.default_rng(1),
        )
        plain = SecondOrderSDM(
            ModulatorParams(), ni, rng=np.random.default_rng(1)
        )
        assert np.array_equal(
            wrapped.simulate(u).bitstream, plain.simulate(u).bitstream
        )

    def test_signal_unaffected_by_chopping(self):
        """Chopping must not disturb the signal path: DC tracking holds
        with chopping on."""
        sdm = ChoppedSecondOrderSDM(
            ModulatorParams(), NonidealityParams.ideal(), enabled=True,
            rng=np.random.default_rng(2),
        )
        out = sdm.simulate(np.full(20000, 0.4))
        assert out.mean == pytest.approx(0.4, abs=0.01)

    def test_reset(self):
        sdm = ChoppedSecondOrderSDM(
            ModulatorParams(), FLICKERY, rng=np.random.default_rng(3)
        )
        u = np.zeros(1000)
        sdm.simulate(u)
        sdm.reset()
        assert sdm.chop_sequence(2)[0] == 1.0

    def test_rejects_odd_divider(self):
        with pytest.raises(ConfigurationError):
            ChoppedSecondOrderSDM(chop_divider=3)
