"""Loop coefficients and stability screening."""

import pytest

from repro.errors import ConfigurationError
from repro.sdm.topology import LoopCoefficients


class TestCoefficients:
    def test_boser_wooley_defaults(self):
        c = LoopCoefficients.boser_wooley()
        assert (c.a1, c.a2, c.b1, c.b2) == (0.5, 0.5, 0.5, 0.5)

    def test_input_full_scale(self):
        assert LoopCoefficients.boser_wooley().input_full_scale == 1.0
        assert LoopCoefficients(a1=0.25, b1=0.5).input_full_scale == 2.0

    def test_with_feedback_ratio(self):
        c = LoopCoefficients.boser_wooley().with_feedback_ratio(0.5)
        assert c.b1 == pytest.approx(0.25)
        assert c.b2 == 0.5  # second stage untouched
        assert c.a1 == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            LoopCoefficients(a1=0.0)
        with pytest.raises(ConfigurationError):
            LoopCoefficients.boser_wooley().with_feedback_ratio(0.0)


class TestStabilityScreen:
    def test_nominal_loop_stable_at_half_scale(self):
        assert LoopCoefficients.boser_wooley().stability_margin(0.5)

    def test_nominal_loop_stable_at_point8(self):
        assert LoopCoefficients.boser_wooley().stability_margin(0.8)

    def test_overdriven_loop_flagged(self):
        """Input beyond the feedback strength must destabilize."""
        assert not LoopCoefficients.boser_wooley().stability_margin(1.3)

    def test_weak_feedback_unstable_sooner(self):
        weak = LoopCoefficients.boser_wooley().with_feedback_ratio(0.3)
        # Full scale shrinks to 0.3; 0.5 amplitude overdrives it.
        assert not weak.stability_margin(0.5)
        assert weak.stability_margin(0.15)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ConfigurationError):
            LoopCoefficients.boser_wooley().stability_margin(-0.1)
