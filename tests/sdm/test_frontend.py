"""Capacitive and voltage input branches."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sdm.frontend import CapacitiveFrontEnd, VoltageFrontEnd


class TestCapacitive:
    def test_zero_at_reference(self):
        fe = CapacitiveFrontEnd(reference_cap_f=174e-15)
        assert fe.loop_input(174e-15) == pytest.approx(0.0)

    def test_gain(self):
        fe = CapacitiveFrontEnd(reference_cap_f=174e-15, feedback_cap_f=50e-15)
        delta = 5e-15
        assert fe.loop_input(174e-15 + delta) == pytest.approx(delta / 50e-15)

    def test_sign(self):
        fe = CapacitiveFrontEnd(reference_cap_f=174e-15)
        assert fe.loop_input(180e-15) > 0
        assert fe.loop_input(170e-15) < 0

    def test_inverse_round_trip(self):
        fe = CapacitiveFrontEnd(reference_cap_f=174e-15, feedback_cap_f=50e-15)
        u = np.linspace(-0.8, 0.8, 9)
        assert fe.loop_input(fe.capacitance_for_input(u)) == pytest.approx(u)

    def test_excitation_fraction_scales(self):
        full = CapacitiveFrontEnd(174e-15, excitation_fraction=1.0)
        half = CapacitiveFrontEnd(174e-15, excitation_fraction=0.5)
        c = 180e-15
        assert half.loop_input(c) == pytest.approx(full.loop_input(c) / 2)

    def test_full_scale_capacitance(self):
        fe = CapacitiveFrontEnd(174e-15, feedback_cap_f=50e-15)
        assert fe.full_scale_capacitance_delta_f(1.0) == pytest.approx(50e-15)

    def test_gain_per_farad(self):
        fe = CapacitiveFrontEnd(174e-15, feedback_cap_f=50e-15)
        assert fe.gain_per_farad == pytest.approx(1.0 / 50e-15)

    def test_rejects_nonpositive_caps(self):
        with pytest.raises(ConfigurationError):
            CapacitiveFrontEnd(0.0)
        with pytest.raises(ConfigurationError):
            CapacitiveFrontEnd(174e-15, feedback_cap_f=0.0)

    def test_rejects_nonpositive_sense(self):
        fe = CapacitiveFrontEnd(174e-15)
        with pytest.raises(ConfigurationError):
            fe.loop_input(-1e-15)


class TestVoltage:
    def test_normalization(self):
        fe = VoltageFrontEnd(vref_v=2.5)
        assert fe.loop_input(1.25) == pytest.approx(0.5)

    def test_round_trip(self):
        fe = VoltageFrontEnd(vref_v=2.5)
        v = np.linspace(-2.0, 2.0, 9)
        assert fe.voltage_for_input(fe.loop_input(v)) == pytest.approx(v)

    def test_rejects_bad_vref(self):
        with pytest.raises(ConfigurationError):
            VoltageFrontEnd(vref_v=0.0)
