"""SC integrator stage: accumulation, leak, saturation."""

import pytest

from repro.errors import ConfigurationError
from repro.sdm.integrator import SCIntegrator


class TestIdealAccumulation:
    def test_accumulates(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5)
        integ.step(1.0, 0.0)
        integ.step(1.0, 0.0)
        assert integ.state == pytest.approx(1.0)

    def test_delaying_output(self):
        """step() returns the state *before* this cycle's charge."""
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5)
        out0 = integ.step(1.0, 0.0)
        out1 = integ.step(0.0, 0.0)
        assert out0 == pytest.approx(0.0)
        assert out1 == pytest.approx(0.5)

    def test_feedback_subtracts(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5)
        integ.step(1.0, 1.0)
        assert integ.state == pytest.approx(0.0)

    def test_reset(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5)
        integ.step(1.0, 0.0)
        integ.reset()
        assert integ.state == 0.0

    def test_noise_injection(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5)
        integ.step(0.0, 0.0, noise=0.01)
        assert integ.state == pytest.approx(0.01)


class TestFiniteGain:
    def test_ideal_leak_is_unity(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5,
                             opamp_gain=1e12)
        assert integ.leak == pytest.approx(1.0)

    def test_finite_gain_leaks(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5,
                             opamp_gain=100.0)
        assert integ.leak == pytest.approx(1.0 - 1.5 / 100.0)

    def test_leak_decays_state(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5,
                             opamp_gain=50.0)
        integ.state = 1.0
        for _ in range(100):
            integ.step(0.0, 0.0)
        assert 0.0 < integ.state < 0.1

    def test_gain_error(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5,
                             opamp_gain=100.0)
        integ.step(1.0, 0.0)
        assert integ.state == pytest.approx(0.5 * 0.99)


class TestSaturation:
    def test_clips_at_swing(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5,
                             swing_limit=2.0)
        for _ in range(20):
            integ.step(1.0, 0.0)
        assert integ.state == pytest.approx(2.0)
        assert integ.is_saturated

    def test_clips_negative(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5,
                             swing_limit=2.0)
        for _ in range(20):
            integ.step(-1.0, 0.0)
        assert integ.state == pytest.approx(-2.0)

    def test_recovers_after_clip(self):
        integ = SCIntegrator(signal_gain=0.5, feedback_gain=0.5,
                             swing_limit=2.0)
        for _ in range(20):
            integ.step(1.0, 0.0)
        integ.step(-1.0, 0.0)
        assert integ.state < 2.0
        assert not integ.is_saturated


class TestValidation:
    def test_rejects_bad_gains(self):
        with pytest.raises(ConfigurationError):
            SCIntegrator(signal_gain=0.0, feedback_gain=0.5)
        with pytest.raises(ConfigurationError):
            SCIntegrator(signal_gain=0.5, feedback_gain=-1.0)

    def test_rejects_bad_swing(self):
        with pytest.raises(ConfigurationError):
            SCIntegrator(signal_gain=0.5, feedback_gain=0.5, swing_limit=0.0)
