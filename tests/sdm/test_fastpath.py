"""Fast backend vs reference loop: bit-identity and statistical parity."""

import numpy as np
import pytest

from repro.dsp.cic import CICDecimator
from repro.dsp.spectrum import analyze_tone, coherent_tone_frequency
from repro.errors import ConfigurationError, ModulatorOverloadError
from repro.params import NonidealityParams
from repro.sdm import fastpath
from repro.sdm.feedback import FeedbackDAC
from repro.sdm.modulator import SecondOrderSDM


def make_pair(nonideality=None, seed=7, **kwargs):
    """Two modulators in identical configurations and RNG states."""
    ref = SecondOrderSDM(
        nonideality=nonideality,
        rng=np.random.default_rng(seed),
        backend="reference",
        **kwargs,
    )
    fast = SecondOrderSDM(
        nonideality=nonideality,
        rng=np.random.default_rng(seed),
        backend="fast",
        **kwargs,
    )
    return ref, fast


def tone(n, amplitude=0.5, freq=0.013):
    return amplitude * np.sin(2 * np.pi * freq * np.arange(n))


NOISY_CONFIGS = {
    "default": NonidealityParams(),
    "flicker": NonidealityParams(flicker_corner_hz=1000.0),
    "offset+hysteresis": NonidealityParams(
        comparator_offset_v=5e-3, comparator_hysteresis_v=2e-3
    ),
}


class TestBitIdentity:
    def test_ideal_bitstream_identical(self):
        ref, fast = make_pair(NonidealityParams.ideal())
        u = tone(20000)
        out_ref = ref.simulate(u, record_states=True)
        out_fast = fast.simulate(u, record_states=True)
        assert np.array_equal(out_ref.bitstream, out_fast.bitstream)
        assert np.array_equal(out_ref.states, out_fast.states)
        assert out_ref.clipped_samples == out_fast.clipped_samples
        assert ref.stage1.state == fast.stage1.state
        assert ref.stage2.state == fast.stage2.state

    @pytest.mark.parametrize("name", sorted(NOISY_CONFIGS))
    def test_same_seed_noisy_identical(self, name):
        """Shared RNG draw order makes noisy runs bit-identical too."""
        ref, fast = make_pair(NOISY_CONFIGS[name])
        u = tone(16000)
        out_ref = ref.simulate(u)
        out_fast = fast.simulate(u)
        assert np.array_equal(out_ref.bitstream, out_fast.bitstream)
        assert out_ref.clipped_samples == out_fast.clipped_samples
        assert ref.stage1.state == fast.stage1.state

    def test_dac_reference_noise_identical(self):
        dac_kwargs = dict(reference_error=0.01, reference_noise_sigma=1e-4)
        ref = SecondOrderSDM(
            dac=FeedbackDAC(**dac_kwargs),
            rng=np.random.default_rng(3),
            backend="reference",
        )
        fast = SecondOrderSDM(
            dac=FeedbackDAC(**dac_kwargs),
            rng=np.random.default_rng(3),
            backend="fast",
        )
        u = tone(8000)
        assert np.array_equal(
            ref.simulate(u).bitstream, fast.simulate(u).bitstream
        )

    def test_streaming_continuation_identical(self):
        """State carried across chunked simulate calls matches too."""
        ref, fast = make_pair(NonidealityParams.ideal())
        u = tone(12000)
        out_ref = ref.simulate(u)
        parts = [fast.simulate(u[i : i + 1000]) for i in range(0, u.size, 1000)]
        got = np.concatenate([p.bitstream for p in parts])
        assert np.array_equal(out_ref.bitstream, got)

    def test_per_call_backend_override(self):
        sdm = SecondOrderSDM(
            nonideality=NonidealityParams.ideal(),
            rng=np.random.default_rng(1),
        )
        u = tone(4000)
        a = sdm.simulate(u, backend="reference")
        sdm.reset()
        b = sdm.simulate(u, backend="fast")
        assert np.array_equal(a.bitstream, b.bitstream)


class TestStatisticalParity:
    def test_snr_matches_within_tolerance(self):
        """Different seeds: the decimated SNR must agree statistically."""
        osr, n_out = 128, 1024
        fs = 128e3
        out_rate = fs / osr
        f_tone = coherent_tone_frequency(15.625, out_rate, n_out)
        t = np.arange((n_out + 16) * osr) / fs
        u = 0.5 * np.sin(2 * np.pi * f_tone * t)

        def snr(backend, seed):
            sdm = SecondOrderSDM(
                rng=np.random.default_rng(seed), backend=backend
            )
            bits = sdm.simulate(u).bitstream
            cic = CICDecimator(order=3, decimation=osr, input_bits=2)
            vals = (
                cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain
            )[16 : 16 + n_out]
            return analyze_tone(
                vals, out_rate, tone_hz=f_tone, max_band_hz=500.0
            ).snr_db

        assert snr("fast", 101) == pytest.approx(snr("reference", 202), abs=3.0)


class TestClippingAndOverload:
    def test_clipped_samples_agree(self):
        ref, fast = make_pair(NonidealityParams.ideal())
        u = tone(6000, amplitude=1.3)  # deliberately overloads the loop
        out_ref = ref.simulate(u)
        out_fast = fast.simulate(u)
        assert out_ref.clipped_samples > 0
        assert out_ref.clipped_samples == out_fast.clipped_samples
        assert np.array_equal(out_ref.bitstream, out_fast.bitstream)

    def test_overload_raise_parity(self):
        ref, fast = make_pair(NonidealityParams.ideal())
        u = tone(6000, amplitude=1.3)
        with pytest.raises(ModulatorOverloadError) as err_ref:
            ref.simulate(u, overload_policy="raise")
        with pytest.raises(ModulatorOverloadError) as err_fast:
            fast.simulate(u, overload_policy="raise")
        assert err_ref.value.sample_index == err_fast.value.sample_index
        # Neither backend commits integrator state on abort.
        assert ref.stage1.state == fast.stage1.state
        assert ref.stage2.state == fast.stage2.state


class TestBatch:
    def test_batch_rows_match_fresh_single_runs(self):
        sdm = SecondOrderSDM(
            nonideality=NonidealityParams.ideal(),
            rng=np.random.default_rng(5),
        )
        rows = np.stack([tone(3000, 0.4), tone(3000, 0.6), tone(3000, 0.2)])
        batch = sdm.simulate_batch(rows)
        for row, out in zip(rows, batch):
            fresh = SecondOrderSDM(
                nonideality=NonidealityParams.ideal(),
                rng=np.random.default_rng(5),
            )
            assert np.array_equal(out.bitstream, fresh.simulate(row).bitstream)

    def test_batch_leaves_state_untouched(self):
        sdm = SecondOrderSDM(
            nonideality=NonidealityParams.ideal(),
            rng=np.random.default_rng(5),
        )
        sdm.simulate(tone(1000))
        before = (sdm.stage1.state, sdm.stage2.state)
        sdm.simulate_batch(np.stack([tone(500), tone(500, 0.7)]))
        assert (sdm.stage1.state, sdm.stage2.state) == before

    def test_batch_rejects_1d(self):
        sdm = SecondOrderSDM(rng=np.random.default_rng(5))
        with pytest.raises(ConfigurationError):
            sdm.simulate_batch(tone(100))


class TestFallbackAndDispatch:
    def test_python_fallback_matches_reference_loop(self):
        """force_python pins the exact-arithmetic fallback path."""
        ref, fast = make_pair(NonidealityParams.ideal())
        u = tone(5000)
        out_ref = ref.simulate(u)
        a1 = fast.stage1.signal_gain * fast.stage1.gain_error
        result = fastpath.run_loop(
            au=a1 * u,
            noise=np.zeros(u.size),
            dac_noise=None,
            dac_gain=1.0,
            p1=fast.stage1.leak,
            b1=fast.stage1.feedback_gain * fast.stage1.gain_error,
            p2=fast.stage2.leak,
            a2=fast.stage2.signal_gain * fast.stage2.gain_error,
            b2=fast.stage2.feedback_gain * fast.stage2.gain_error,
            swing=fast.stage1.swing_limit,
            x1=0.0,
            x2=0.0,
            force_python=True,
        )
        assert np.array_equal(out_ref.bitstream, result.bits)

    @pytest.mark.skipif(
        not fastpath.kernel_available(), reason="no C compiler in environment"
    )
    def test_kernel_matches_python_fallback(self):
        rng = np.random.default_rng(17)
        kwargs = dict(
            au=0.5 * rng.standard_normal(4000) * 0.1,
            noise=1e-5 * rng.standard_normal(4000),
            dac_noise=None,
            dac_gain=1.0,
            p1=0.9998,
            b1=0.5,
            p2=0.9998,
            a2=0.5,
            b2=0.5,
            swing=1.0,
            x1=0.0,
            x2=0.0,
            record_states=True,
        )
        kernel = fastpath.run_loop(**kwargs)
        python = fastpath.run_loop(force_python=True, **kwargs)
        assert np.array_equal(kernel.bits, python.bits)
        assert np.array_equal(kernel.states, python.states)
        assert kernel.x1 == python.x1 and kernel.x2 == python.x2
        assert kernel.clipped == python.clipped

    def test_metastable_comparator_routes_to_reference(self):
        """In-loop random comparator draws stay on the reference path."""
        sdm = SecondOrderSDM(rng=np.random.default_rng(9), backend="fast")
        sdm.comparator.metastable_band_v = 1e-3
        out = sdm.simulate(tone(2000))
        assert set(np.unique(out.bitstream)) <= {-1, 1}

    def test_kernel_available_is_bool(self):
        assert isinstance(fastpath.kernel_available(), bool)


class TestValidationAndRegressions:
    def test_rejects_unknown_backend_at_construction(self):
        with pytest.raises(ConfigurationError):
            SecondOrderSDM(backend="turbo")

    def test_rejects_unknown_backend_per_call(self):
        sdm = SecondOrderSDM(rng=np.random.default_rng(1))
        with pytest.raises(ConfigurationError):
            sdm.simulate(tone(10), backend="turbo")

    def test_dac_shares_coefficients_object(self):
        """Regression: the DAC must alias, not copy, the loop coefficients."""
        sdm = SecondOrderSDM(rng=np.random.default_rng(1))
        assert sdm.dac.coefficients is sdm.coefficients
