"""Single-bit comparator behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sdm.comparator import Comparator


class TestIdeal:
    def test_sign_function(self):
        comp = Comparator()
        assert comp.decide(0.1) == 1
        assert comp.decide(-0.1) == -1
        assert comp.decide(0.0) == 1  # ties resolve high

    def test_is_ideal_flag(self):
        assert Comparator().is_ideal()
        assert not Comparator(offset_v=0.01).is_ideal()
        assert not Comparator(hysteresis_v=0.01).is_ideal()


class TestOffset:
    def test_offset_shifts_threshold(self):
        comp = Comparator(offset_v=0.2)
        assert comp.decide(0.1) == -1
        assert comp.decide(0.3) == 1

    def test_negative_offset(self):
        comp = Comparator(offset_v=-0.2)
        assert comp.decide(-0.1) == 1


class TestHysteresis:
    def test_holds_previous_decision(self):
        comp = Comparator(hysteresis_v=0.2)
        assert comp.decide(1.0) == 1  # now latched high
        # Input slightly below zero but above -hyst/2: stays high.
        assert comp.decide(-0.05) == 1
        # Below -hyst/2: flips.
        assert comp.decide(-0.15) == -1
        # Slightly above zero but below +hyst/2: stays low.
        assert comp.decide(0.05) == -1

    def test_reset_restores_high_state(self):
        comp = Comparator(hysteresis_v=0.2)
        comp.decide(-1.0)
        assert comp.previous_decision == -1
        comp.reset()
        assert comp.previous_decision == 1

    def test_rejects_negative_hysteresis(self):
        with pytest.raises(ConfigurationError):
            Comparator(hysteresis_v=-0.1)


class TestMetastability:
    def test_decisions_random_in_band(self):
        comp = Comparator(
            metastable_band_v=0.1, rng=np.random.default_rng(1)
        )
        decisions = [comp.decide(0.01) for _ in range(400)]
        ones = sum(1 for d in decisions if d == 1)
        assert 120 < ones < 280  # roughly balanced coin

    def test_deterministic_outside_band(self):
        comp = Comparator(metastable_band_v=0.1)
        assert all(comp.decide(0.5) == 1 for _ in range(10))

    def test_rejects_negative_band(self):
        with pytest.raises(ConfigurationError):
            Comparator(metastable_band_v=-0.1)
