"""Higher-order CIFB loops."""

import numpy as np
import pytest

from repro.dsp.cic import CICDecimator
from repro.dsp.spectrum import analyze_tone, coherent_tone_frequency
from repro.errors import ConfigurationError
from repro.sdm.higher_order import STANDARD_GAINS, HigherOrderSDM


def snr_of(order: int, osr: int = 64, n_out: int = 1024) -> float:
    fs = 128e3
    out_rate = fs / osr
    tone = coherent_tone_frequency(out_rate / 64, out_rate, n_out)
    t = np.arange((n_out + 16) * osr) / fs
    sdm = HigherOrderSDM(order=order)
    amp = sdm.recommended_max_amplitude
    bits = sdm.simulate(amp * np.sin(2 * np.pi * tone * t)).bitstream
    cic = CICDecimator(order=order + 1, decimation=osr, input_bits=2)
    vals = (cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain)[
        16 : 16 + n_out
    ]
    return analyze_tone(vals, out_rate, tone_hz=tone).snr_db


class TestOrders:
    def test_order3_beats_order2(self):
        assert snr_of(3) > snr_of(2) + 8.0

    def test_order2_beats_order1(self):
        assert snr_of(2) > snr_of(1) + 10.0

    def test_stable_at_recommended_amplitude(self):
        for order in (1, 2, 3, 4):
            sdm = HigherOrderSDM(order=order)
            t = np.arange(30000)
            out = sdm.simulate(
                sdm.recommended_max_amplitude
                * np.sin(2 * np.pi * 0.0013 * t)
            )
            assert out.clipped_samples < 0.01 * t.size, f"order {order}"

    def test_order2_matches_dedicated_model(self):
        """The generic CIFB at order 2 equals SecondOrderSDM (ideal)."""
        from repro.params import ModulatorParams, NonidealityParams
        from repro.sdm.modulator import SecondOrderSDM

        u = 0.5 * np.sin(2 * np.pi * 0.002 * np.arange(20000))
        generic = HigherOrderSDM(order=2).simulate(u).bitstream
        dedicated = SecondOrderSDM(
            ModulatorParams(), NonidealityParams.ideal()
        ).simulate(u).bitstream
        assert np.array_equal(generic, dedicated)

    def test_theoretical_slopes(self):
        assert HigherOrderSDM(order=2).theoretical_sqnr_slope_db_per_octave() == (
            pytest.approx(15.05, abs=0.1)
        )
        assert HigherOrderSDM(order=3).theoretical_sqnr_slope_db_per_octave() == (
            pytest.approx(21.07, abs=0.1)
        )


class TestStreaming:
    def test_chunked_equals_monolithic(self):
        u = 0.4 * np.sin(2 * np.pi * 0.003 * np.arange(10000))
        whole = HigherOrderSDM(order=3).simulate(u).bitstream
        stream = HigherOrderSDM(order=3)
        parts = np.concatenate(
            [stream.simulate(u[:4000]).bitstream,
             stream.simulate(u[4000:]).bitstream]
        )
        assert np.array_equal(whole, parts)

    def test_reset(self):
        u = 0.4 * np.sin(2 * np.pi * 0.003 * np.arange(5000))
        sdm = HigherOrderSDM(order=3)
        a = sdm.simulate(u).bitstream
        sdm.reset()
        b = sdm.simulate(u).bitstream
        assert np.array_equal(a, b)


class TestValidation:
    def test_rejects_unknown_order(self):
        with pytest.raises(ConfigurationError):
            HigherOrderSDM(order=5)

    def test_rejects_wrong_gain_count(self):
        with pytest.raises(ConfigurationError):
            HigherOrderSDM(order=3, gains=(0.5, 0.5))

    def test_rejects_nonpositive_gain(self):
        with pytest.raises(ConfigurationError):
            HigherOrderSDM(order=2, gains=(0.5, 0.0))

    def test_standard_gains_table(self):
        assert set(STANDARD_GAINS) == {1, 2, 3, 4}
        for order, gains in STANDARD_GAINS.items():
            assert len(gains) == order
