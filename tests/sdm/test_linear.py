"""z-domain NTF/STF analysis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sdm.linear import LinearLoopModel

FS = 128e3


@pytest.fixture(scope="module")
def model() -> LinearLoopModel:
    return LinearLoopModel()


class TestPoles:
    def test_nominal_poles(self, model):
        """Default loop: |poles| = sqrt(0.75)."""
        assert np.abs(model.poles) == pytest.approx(
            [np.sqrt(0.75)] * 2, rel=1e-9
        )

    def test_stable(self, model):
        assert model.is_stable

    def test_strong_first_feedback_destabilizes(self):
        from repro.sdm.topology import LoopCoefficients

        hot = LinearLoopModel(LoopCoefficients(b1=1.2))
        assert not hot.is_stable


class TestNTF:
    def test_null_at_dc(self, model):
        ntf = model.ntf(np.array([0.0]), FS)
        assert abs(ntf[0]) == pytest.approx(0.0, abs=1e-12)

    def test_40db_per_decade_shaping(self, model):
        """2nd-order shaping: |NTF| rises 40 dB/decade at low freq."""
        f = np.array([10.0, 100.0])
        mag = np.abs(model.ntf(f, FS))
        slope = 20 * np.log10(mag[1] / mag[0])
        assert slope == pytest.approx(40.0, abs=1.0)

    def test_out_of_band_gain_moderate(self, model):
        """Lee-criterion comfort zone for a 2nd-order single-bit loop."""
        assert 1.0 < model.max_ntf_gain < 4.0

    def test_rejects_beyond_nyquist(self, model):
        with pytest.raises(ConfigurationError):
            model.ntf(np.array([FS]), FS)


class TestSTF:
    def test_unity_at_dc(self, model):
        stf = model.stf(np.array([0.0]), FS)
        assert abs(stf[0]) == pytest.approx(1.0, rel=1e-9)

    def test_flat_in_band(self, model):
        f = np.linspace(0.0, 500.0, 20)
        mag = np.abs(model.stf(f, FS))
        assert mag == pytest.approx(np.ones_like(mag), rel=0.01)


class TestSQNRPrediction:
    def test_osr128_exceeds_12bit(self, model):
        """Quantization-limited SQNR at OSR 128 must beat the 74 dB that
        12 bits need — the silicon's 12-bit interface is the bottleneck,
        not the modulator."""
        assert model.predicted_sqnr_db(128, amplitude=0.8) > 80.0

    def test_slope_15db_per_octave(self, model):
        slope = model.sqnr_slope_db_per_octave(32, 256)
        assert slope == pytest.approx(15.0, abs=0.8)

    def test_noise_decreases_with_osr(self, model):
        n64 = model.inband_quantization_noise_power(64)
        n128 = model.inband_quantization_noise_power(128)
        # 2nd-order: noise power ~ OSR^-5 -> factor 32.
        assert n64 / n128 == pytest.approx(32.0, rel=0.1)

    def test_rejects_bad_osr(self, model):
        with pytest.raises(ConfigurationError):
            model.inband_quantization_noise_power(1)

    def test_rejects_bad_amplitude(self, model):
        with pytest.raises(ConfigurationError):
            model.predicted_sqnr_db(128, amplitude=0.0)


class TestAgainstSimulation:
    def test_linear_model_is_conservative_bound(self):
        """The unity-quantizer-gain linear model over-estimates in-band
        noise for this topology (the D(1) = a2*b1 term amplifies it), so
        the simulated loop must do *at least* as well as predicted — and
        not implausibly better (the slope is checked separately)."""
        from repro.dsp.cic import CICDecimator
        from repro.dsp.spectrum import analyze_tone, coherent_tone_frequency
        from repro.params import ModulatorParams, NonidealityParams
        from repro.sdm.modulator import SecondOrderSDM

        model = LinearLoopModel()
        osr = 64
        n_out = 2048
        fs = 128e3
        out_rate = fs / osr
        tone = coherent_tone_frequency(out_rate / 100, out_rate, n_out)
        t = np.arange((n_out + 16) * osr) / fs
        sdm = SecondOrderSDM(
            ModulatorParams(osr=osr), NonidealityParams.ideal()
        )
        bits = sdm.simulate(0.5 * np.sin(2 * np.pi * tone * t)).bitstream
        cic = CICDecimator(order=3, decimation=osr, input_bits=2)
        vals = (cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain)[
            16 : 16 + n_out
        ]
        measured = analyze_tone(vals, out_rate, tone_hz=tone).snr_db
        predicted = model.predicted_sqnr_db(osr, amplitude=0.5)
        assert measured > predicted - 3.0
        assert measured < predicted + 20.0
