"""Feedback DAC with adjustable first-stage capacitor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sdm.feedback import FeedbackDAC


class TestNominal:
    def test_levels_symmetric(self):
        dac = FeedbackDAC()
        lo, hi = dac.feedback_levels()
        assert lo == -hi == -1.0

    def test_feedback_value_signs(self):
        dac = FeedbackDAC()
        assert dac.feedback_value(1) == 1.0
        assert dac.feedback_value(-1) == -1.0

    def test_rejects_bad_decision(self):
        dac = FeedbackDAC()
        with pytest.raises(ConfigurationError):
            dac.feedback_value(0)


class TestCfbRatio:
    def test_ratio_scales_b1_only(self):
        dac = FeedbackDAC(cfb_ratio=0.5)
        assert dac.coefficients.b1 == pytest.approx(0.25)
        assert dac.coefficients.b2 == pytest.approx(0.5)

    def test_gain_boost(self):
        assert FeedbackDAC(cfb_ratio=0.5).conversion_gain_boost == 2.0
        assert FeedbackDAC(cfb_ratio=2.0).conversion_gain_boost == 0.5

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ConfigurationError):
            FeedbackDAC(cfb_ratio=0.0)


class TestReferenceErrors:
    def test_static_error_scales_levels(self):
        dac = FeedbackDAC(reference_error=0.01)
        assert dac.feedback_value(1) == pytest.approx(1.01)

    def test_reference_noise_needs_rng(self):
        dac = FeedbackDAC(reference_noise_sigma=1e-4)
        with pytest.raises(ConfigurationError, match="random"):
            dac.feedback_value(1)

    def test_reference_noise_applied(self):
        rng = np.random.default_rng(3)
        dac = FeedbackDAC(reference_noise_sigma=0.1)
        values = [dac.feedback_value(1, rng=rng) for _ in range(200)]
        assert np.std(values) == pytest.approx(0.1, rel=0.25)
        assert np.mean(values) == pytest.approx(1.0, abs=0.03)

    def test_rejects_large_static_error(self):
        with pytest.raises(ConfigurationError):
            FeedbackDAC(reference_error=0.6)

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            FeedbackDAC(reference_noise_sigma=-1e-4)
