"""Multi-bit quantizer, thermometer DAC, DWA shaping."""

import numpy as np
import pytest

from repro.dsp.cic import CICDecimator
from repro.dsp.spectrum import analyze_tone, coherent_tone_frequency
from repro.errors import ConfigurationError
from repro.sdm.multibit import MultibitQuantizer, MultibitSDM, ThermometerDAC


class TestQuantizer:
    def test_level_count(self):
        q = MultibitQuantizer(bits=3)
        assert q.n_levels == 8

    def test_extremes(self):
        q = MultibitQuantizer(bits=3)
        assert q.quantize(-10.0) == 0
        assert q.quantize(10.0) == 7

    def test_monotone(self):
        q = MultibitQuantizer(bits=3)
        codes = [q.quantize(v) for v in np.linspace(-1, 1, 41)]
        assert codes == sorted(codes)

    def test_level_values_span(self):
        q = MultibitQuantizer(bits=2)
        values = [q.level_value(i) for i in range(4)]
        assert values[0] == pytest.approx(-1.0)
        assert values[-1] == pytest.approx(1.0)
        assert values == pytest.approx([-1.0, -1 / 3, 1 / 3, 1.0])

    def test_quantize_reconstruct_error(self):
        q = MultibitQuantizer(bits=4)
        for v in np.linspace(-0.99, 0.99, 37):
            err = abs(q.level_value(q.quantize(v)) - v)
            assert err <= q.step / 2 + 1e-12

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            MultibitQuantizer(bits=0)
        with pytest.raises(ConfigurationError):
            MultibitQuantizer(bits=7)


class TestThermometerDAC:
    def test_ideal_endpoints(self):
        dac = ThermometerDAC(n_elements=7, mismatch_sigma=0.0)
        assert dac.convert(0) == pytest.approx(-1.0)
        assert dac.convert(7) == pytest.approx(1.0)

    def test_ideal_midpoint(self):
        dac = ThermometerDAC(n_elements=8, mismatch_sigma=0.0)
        assert dac.convert(4) == pytest.approx(0.0)

    def test_mismatch_preserves_full_scale(self):
        """Normalization makes the all-elements-on value exact."""
        dac = ThermometerDAC(
            n_elements=7, mismatch_sigma=0.02,
            rng=np.random.default_rng(5),
        )
        assert dac.convert(7) == pytest.approx(1.0, abs=1e-12)

    def test_fixed_selection_code_dependent_error(self):
        dac = ThermometerDAC(
            n_elements=7, mismatch_sigma=0.02, selection="fixed",
            rng=np.random.default_rng(6),
        )
        # Same code always gives the same (possibly wrong) value.
        assert dac.convert(3) == dac.convert(3)

    def test_dwa_rotates(self):
        dac = ThermometerDAC(
            n_elements=7, mismatch_sigma=0.05, selection="dwa",
            rng=np.random.default_rng(7),
        )
        # Same code gives different values as the pointer rotates
        # (averaging the mismatch over time).
        values = {round(dac.convert(3), 12) for _ in range(7)}
        assert len(values) > 1

    def test_dwa_long_run_average_is_nominal(self):
        dac = ThermometerDAC(
            n_elements=7, mismatch_sigma=0.05, selection="dwa",
            rng=np.random.default_rng(8),
        )
        values = [dac.convert(3) for _ in range(700)]
        nominal = 2.0 * 3 / 7 - 1.0
        assert np.mean(values) == pytest.approx(nominal, abs=1e-3)

    def test_rejects_bad_selection(self):
        with pytest.raises(ConfigurationError):
            ThermometerDAC(n_elements=7, selection="random")

    def test_rejects_out_of_range_code(self):
        dac = ThermometerDAC(n_elements=7)
        with pytest.raises(ConfigurationError):
            dac.convert(8)


class TestMultibitSDM:
    def _snr(self, sdm, amplitude=0.9, osr=64, n_out=1024):
        fs = 128e3
        out_rate = fs / osr
        tone = coherent_tone_frequency(out_rate / 64, out_rate, n_out)
        t = np.arange((n_out + 16) * osr) / fs
        out = sdm.simulate(amplitude * np.sin(2 * np.pi * tone * t))
        cic = CICDecimator(order=3, decimation=osr, input_bits=16)
        # 896 = 128 * 7 maps the 3-bit DAC grid to exact integers.
        scaled = np.round(out.values * 896).astype(np.int64)
        vals = (cic.process(scaled).astype(float) / (cic.dc_gain * 896))[
            16 : 16 + n_out
        ]
        return analyze_tone(vals, out_rate, tone_hz=tone).snr_db

    def test_multibit_beats_single_bit_sqnr(self):
        from repro.params import ModulatorParams, NonidealityParams
        from repro.sdm.modulator import SecondOrderSDM

        mb = MultibitSDM(ModulatorParams(osr=64), quantizer_bits=3)
        snr_mb = self._snr(mb)
        sb = SecondOrderSDM(
            ModulatorParams(osr=64), NonidealityParams.ideal()
        )
        fs, osr, n_out = 128e3, 64, 1024
        out_rate = fs / osr
        tone = coherent_tone_frequency(out_rate / 64, out_rate, n_out)
        t = np.arange((n_out + 16) * osr) / fs
        bits = sb.simulate(0.75 * np.sin(2 * np.pi * tone * t)).bitstream
        cic = CICDecimator(order=3, decimation=osr, input_bits=2)
        vals = (cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain)[
            16 : 16 + n_out
        ]
        snr_sb = analyze_tone(vals, out_rate, tone_hz=tone).snr_db
        assert snr_mb > snr_sb + 3.0

    def test_dwa_recovers_mismatch_loss(self):
        from repro.params import ModulatorParams

        fixed = MultibitSDM(
            ModulatorParams(osr=64), quantizer_bits=3,
            dac_mismatch_sigma=0.005, dac_selection="fixed",
            rng=np.random.default_rng(10),
        )
        dwa = MultibitSDM(
            ModulatorParams(osr=64), quantizer_bits=3,
            dac_mismatch_sigma=0.005, dac_selection="dwa",
            rng=np.random.default_rng(10),
        )
        assert self._snr(dwa) > self._snr(fixed) + 5.0

    def test_stable_near_full_scale(self):
        mb = MultibitSDM(quantizer_bits=3)
        t = np.arange(20000)
        out = mb.simulate(0.9 * np.sin(2 * np.pi * 0.003 * t))
        assert out.clipped_samples == 0

    def test_codes_in_range(self):
        mb = MultibitSDM(quantizer_bits=3)
        out = mb.simulate(np.zeros(1000))
        assert out.codes.min() >= 0
        assert out.codes.max() <= 7

    def test_dc_tracking(self):
        mb = MultibitSDM(quantizer_bits=3)
        out = mb.simulate(np.full(20000, 0.4))
        assert out.values[200:].mean() == pytest.approx(0.4, abs=0.01)
