"""Noise calculators: physical scaling laws."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sdm.nonidealities import (
    BOLTZMANN_J_PER_K,
    FlickerNoiseGenerator,
    integrator_noise_sigma_v,
    jitter_error_sigma,
    kt_over_c_sigma_v,
    leak_factor_from_gain,
)


class TestKTC:
    def test_textbook_value(self):
        """kT/C at 1 pF, 300 K: ~64 uV per phase."""
        sigma = kt_over_c_sigma_v(1e-12, 300.0, phases=1)
        assert sigma == pytest.approx(
            math.sqrt(BOLTZMANN_J_PER_K * 300 / 1e-12), rel=1e-12
        )
        assert sigma == pytest.approx(64e-6, rel=0.02)

    def test_two_phase_sqrt2(self):
        one = kt_over_c_sigma_v(1e-12, phases=1)
        two = kt_over_c_sigma_v(1e-12, phases=2)
        assert two == pytest.approx(one * math.sqrt(2))

    def test_smaller_cap_noisier(self):
        assert kt_over_c_sigma_v(0.5e-12) > kt_over_c_sigma_v(1e-12)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            kt_over_c_sigma_v(0.0)
        with pytest.raises(ConfigurationError):
            kt_over_c_sigma_v(1e-12, temperature_k=-1.0)

    def test_integrator_excess(self):
        base = kt_over_c_sigma_v(1e-12)
        total = integrator_noise_sigma_v(1e-12, opamp_excess_factor=1.5)
        assert total == pytest.approx(base * math.sqrt(1.5))


class TestJitter:
    def test_scaling(self):
        # Error scales with amplitude, frequency and jitter.
        base = jitter_error_sigma(1.0, 1000.0, 1e-9)
        assert jitter_error_sigma(2.0, 1000.0, 1e-9) == pytest.approx(2 * base)
        assert jitter_error_sigma(1.0, 2000.0, 1e-9) == pytest.approx(2 * base)

    def test_formula(self):
        assert jitter_error_sigma(1.0, 1000.0, 1e-9) == pytest.approx(
            2 * math.pi * 1000 * 1e-9 / math.sqrt(2)
        )

    def test_zero_jitter_zero_error(self):
        assert jitter_error_sigma(1.0, 1e6, 0.0) == 0.0


class TestLeak:
    def test_ideal_gain(self):
        assert leak_factor_from_gain(1e12, 0.5) == pytest.approx(1.0)

    def test_formula(self):
        assert leak_factor_from_gain(100.0, 0.5) == pytest.approx(0.985)

    def test_floors_at_zero(self):
        assert leak_factor_from_gain(1.0, 0.5) == 0.0


class TestFlicker:
    def test_psd_slope_near_one_over_f(self):
        """Averaged PSD slope between two decades ~ -10 dB/decade."""
        rng = np.random.default_rng(6)
        fs = 10000.0
        gen = FlickerNoiseGenerator(
            corner_hz=100.0, white_sigma=1.0, sample_rate_hz=fs, rng=rng
        )
        n = 2**16
        x = gen.sample_block(n)
        freqs = np.fft.rfftfreq(n, 1 / fs)
        psd = np.abs(np.fft.rfft(x)) ** 2
        def band_power(f0, f1):
            m = (freqs >= f0) & (freqs < f1)
            return psd[m].mean()
        p_low = band_power(1.0, 3.0)
        p_high = band_power(10.0, 30.0)
        slope_db = 10 * np.log10(p_high / p_low)
        assert slope_db == pytest.approx(-10.0, abs=3.5)

    def test_streaming_continuity(self):
        """Block boundaries must not reset the correlation state: the
        two-block output equals a single run with the same rng stream."""
        rng1 = np.random.default_rng(77)
        gen1 = FlickerNoiseGenerator(10.0, 1.0, 1000.0, rng=rng1)
        whole = gen1.sample_block(200)
        rng2 = np.random.default_rng(77)
        gen2 = FlickerNoiseGenerator(10.0, 1.0, 1000.0, rng=rng2)
        parts = np.concatenate([gen2.sample_block(90), gen2.sample_block(110)])
        assert parts == pytest.approx(whole)

    def test_reset_clears_state(self):
        gen = FlickerNoiseGenerator(
            10.0, 1.0, 1000.0, rng=np.random.default_rng(5)
        )
        gen.sample_block(100)
        gen.reset()
        assert np.all(gen._state == 0.0)

    def test_empty_block(self):
        gen = FlickerNoiseGenerator(
            10.0, 1.0, 1000.0, rng=np.random.default_rng(5)
        )
        assert gen.sample_block(0).size == 0

    def test_rejects_bad_args(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ConfigurationError):
            FlickerNoiseGenerator(0.0, 1.0, 1000.0, rng=rng)
        with pytest.raises(ConfigurationError):
            FlickerNoiseGenerator(10.0, 1.0, 1000.0, rng=rng, n_sources=1)
