"""The full second-order modulator: tracking, shaping, non-idealities."""

import numpy as np
import pytest

from repro.dsp.cic import CICDecimator
from repro.dsp.spectrum import analyze_tone, coherent_tone_frequency
from repro.errors import ConfigurationError, ModulatorOverloadError
from repro.params import ModulatorParams, NonidealityParams
from repro.sdm.feedback import FeedbackDAC
from repro.sdm.modulator import SecondOrderSDM
from repro.sdm.topology import LoopCoefficients


def ideal_sdm(**kwargs) -> SecondOrderSDM:
    return SecondOrderSDM(
        nonideality=NonidealityParams.ideal(),
        rng=np.random.default_rng(1),
        **kwargs,
    )


class TestDCTracking:
    @pytest.mark.parametrize("level", [0.0, 0.3, -0.6, 0.85])
    def test_bitstream_mean_tracks_dc(self, level):
        sdm = ideal_sdm()
        out = sdm.simulate(np.full(20000, level))
        assert out.mean == pytest.approx(level, abs=0.01)

    def test_sine_mean_near_zero(self):
        sdm = ideal_sdm()
        t = np.arange(20000)
        out = sdm.simulate(0.5 * np.sin(2 * np.pi * 0.01 * t))
        assert out.mean == pytest.approx(0.0, abs=0.02)

    def test_bitstream_is_pm1(self):
        sdm = ideal_sdm()
        out = sdm.simulate(np.zeros(1000))
        assert set(np.unique(out.bitstream)) <= {-1, 1}


class TestNoiseShaping:
    def test_snr_grows_15db_per_osr_octave(self):
        """The consequence of 2nd-order shaping: SNR gains ~15 dB per
        octave of OSR (theory; idle tones make raw PSD slopes flaky, the
        decimated SNR is the robust observable)."""

        def snr_at_osr(osr: int) -> float:
            n_out = 1024
            fs = 128e3
            out_rate = fs / osr
            tone = coherent_tone_frequency(out_rate / 64, out_rate, n_out)
            t = np.arange((n_out + 16) * osr) / fs
            sdm = ideal_sdm()
            bits = sdm.simulate(0.5 * np.sin(2 * np.pi * tone * t)).bitstream
            cic = CICDecimator(order=3, decimation=osr, input_bits=2)
            vals = (
                cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain
            )[16 : 16 + n_out]
            return analyze_tone(vals, out_rate, tone_hz=tone).snr_db

        gain_db = snr_at_osr(128) - snr_at_osr(32)
        per_octave = gain_db / 2.0
        assert per_octave == pytest.approx(15.0, abs=3.5)

    def test_snr_at_osr128_exceeds_80db_ideal(self):
        osr, n_out = 128, 2048
        fs = 128e3
        out_rate = fs / osr
        tone = coherent_tone_frequency(15.625, out_rate, n_out)
        t = np.arange((n_out + 16) * osr) / fs
        sdm = ideal_sdm()
        bits = sdm.simulate(0.8 * np.sin(2 * np.pi * tone * t)).bitstream
        cic = CICDecimator(order=3, decimation=osr, input_bits=2)
        vals = (
            cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain
        )[16 : 16 + n_out]
        a = analyze_tone(vals, out_rate, tone_hz=tone, max_band_hz=500.0)
        assert a.snr_db > 80.0


class TestOverload:
    def test_full_scale_dc_clips(self):
        sdm = ideal_sdm()
        out = sdm.simulate(np.full(5000, 1.5))
        assert out.clipped_samples > 0

    def test_raise_policy(self):
        sdm = ideal_sdm()
        with pytest.raises(ModulatorOverloadError) as err:
            sdm.simulate(np.full(5000, 1.5), overload_policy="raise")
        assert err.value.sample_index >= 0

    def test_stable_amplitude_does_not_clip(self):
        sdm = ideal_sdm()
        t = np.arange(30000)
        out = sdm.simulate(0.75 * np.sin(2 * np.pi * 0.003 * t))
        assert out.clipped_samples == 0

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ideal_sdm().simulate(np.zeros(10), overload_policy="explode")

    def test_recommended_amplitude_below_full_scale(self):
        sdm = ideal_sdm()
        assert sdm.recommended_max_amplitude == pytest.approx(
            0.75 * sdm.input_full_scale
        )


class TestStreaming:
    def test_chunked_equals_monolithic_ideal(self):
        """With deterministic (ideal) settings, chunked simulation must be
        bit-identical to one call."""
        u = 0.5 * np.sin(2 * np.pi * 0.001 * np.arange(10000))
        a = ideal_sdm().simulate(u).bitstream
        sdm = ideal_sdm()
        b = np.concatenate(
            [sdm.simulate(u[:3000]).bitstream, sdm.simulate(u[3000:]).bitstream]
        )
        assert np.array_equal(a, b)

    def test_reset_reproduces(self):
        u = 0.3 * np.sin(2 * np.pi * 0.002 * np.arange(5000))
        sdm = ideal_sdm()
        a = sdm.simulate(u).bitstream
        sdm.reset()
        b = sdm.simulate(u).bitstream
        assert np.array_equal(a, b)

    def test_empty_input(self):
        out = ideal_sdm().simulate(np.zeros(0))
        assert out.bitstream.size == 0

    def test_rejects_2d_input(self):
        with pytest.raises(ConfigurationError):
            ideal_sdm().simulate(np.zeros((10, 2)))


class TestStateRecording:
    def test_states_recorded(self):
        sdm = ideal_sdm()
        out = sdm.simulate(np.zeros(100), record_states=True)
        assert out.states.shape == (100, 2)
        assert np.all(np.abs(out.states) <= 3.0)

    def test_states_none_by_default(self):
        out = ideal_sdm().simulate(np.zeros(10))
        assert out.states is None


class TestNonidealities:
    def test_noise_raises_floor(self):
        """Thermal noise must degrade SNR vs the ideal loop."""
        osr, n_out = 64, 1024
        fs = 128e3
        out_rate = fs / osr
        tone = coherent_tone_frequency(out_rate / 50, out_rate, n_out)
        t = np.arange((n_out + 16) * osr) / fs
        u = 0.5 * np.sin(2 * np.pi * tone * t)

        def snr_with(ni):
            sdm = SecondOrderSDM(
                ModulatorParams(osr=osr), ni, rng=np.random.default_rng(5)
            )
            bits = sdm.simulate(u).bitstream
            cic = CICDecimator(order=3, decimation=osr, input_bits=2)
            vals = (
                cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain
            )[16 : 16 + n_out]
            return analyze_tone(vals, out_rate, tone_hz=tone).snr_db

        noisy = NonidealityParams(sampling_cap_f=1e-15, clock_jitter_s=0.0)
        assert snr_with(noisy) < snr_with(NonidealityParams.ideal()) - 6.0

    def test_low_opamp_gain_degrades(self):
        """Leaky integrators raise in-band noise once A ~ OSR."""
        osr, n_out = 128, 1024
        fs = 128e3
        out_rate = fs / osr
        tone = coherent_tone_frequency(out_rate / 50, out_rate, n_out)
        t = np.arange((n_out + 16) * osr) / fs
        u = 0.5 * np.sin(2 * np.pi * tone * t)

        def snr_with_gain(gain):
            ni = NonidealityParams(
                sampling_cap_f=1e-12,
                opamp_gain=gain,
                clock_jitter_s=0.0,
            )
            sdm = SecondOrderSDM(
                ModulatorParams(osr=osr), ni, rng=np.random.default_rng(6)
            )
            bits = sdm.simulate(u).bitstream
            cic = CICDecimator(order=3, decimation=osr, input_bits=2)
            vals = (
                cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain
            )[16 : 16 + n_out]
            return analyze_tone(vals, out_rate, tone_hz=tone).snr_db

        assert snr_with_gain(30.0) < snr_with_gain(1e6) - 3.0

    def test_comparator_offset_mostly_harmless(self):
        """A 10 mV comparator offset is noise-shaped: <2 dB SNR cost."""
        osr, n_out = 64, 1024
        fs = 128e3
        out_rate = fs / osr
        tone = coherent_tone_frequency(out_rate / 50, out_rate, n_out)
        t = np.arange((n_out + 16) * osr) / fs
        u = 0.5 * np.sin(2 * np.pi * tone * t)

        def snr_with_offset(off):
            ni = NonidealityParams(
                sampling_cap_f=1e-9,  # negligible thermal noise
                opamp_gain=1e12,
                comparator_offset_v=off,
                clock_jitter_s=0.0,
            )
            sdm = SecondOrderSDM(
                ModulatorParams(osr=osr), ni, rng=np.random.default_rng(7)
            )
            bits = sdm.simulate(u).bitstream
            cic = CICDecimator(order=3, decimation=osr, input_bits=2)
            vals = (
                cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain
            )[16 : 16 + n_out]
            return analyze_tone(vals, out_rate, tone_hz=tone).snr_db

        assert snr_with_offset(0.01) > snr_with_offset(0.0) - 2.0


class TestConfiguration:
    def test_dac_and_coefficients_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            SecondOrderSDM(
                coefficients=LoopCoefficients.boser_wooley(),
                dac=FeedbackDAC(),
            )

    def test_dac_cfb_changes_full_scale(self):
        sdm = SecondOrderSDM(
            nonideality=NonidealityParams.ideal(),
            dac=FeedbackDAC(cfb_ratio=0.5),
        )
        assert sdm.input_full_scale == pytest.approx(0.5)

    def test_describe(self):
        text = SecondOrderSDM().describe()
        assert "OSR" in text
        assert "full scale" in text
