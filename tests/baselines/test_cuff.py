"""Oscillometric cuff simulator."""

import numpy as np
import pytest

from repro.baselines.cuff import OscillometricCuff
from repro.errors import ConfigurationError
from repro.params import PatientParams
from repro.physiology.patient import VirtualPatient


@pytest.fixture(scope="module")
def reading():
    cuff = OscillometricCuff()
    patient = VirtualPatient(rng=np.random.default_rng(31))
    return cuff.measure(patient, rng=np.random.default_rng(32))


class TestAccuracy:
    def test_systolic_within_clinical_tolerance(self, reading):
        assert reading.systolic_mmhg == pytest.approx(120.0, abs=8.0)

    def test_diastolic_within_clinical_tolerance(self, reading):
        assert reading.diastolic_mmhg == pytest.approx(80.0, abs=8.0)

    def test_map_between(self, reading):
        assert (
            reading.diastolic_mmhg
            < reading.map_mmhg
            < reading.systolic_mmhg
        )

    def test_hypertensive_patient(self):
        cuff = OscillometricCuff()
        patient = VirtualPatient(
            PatientParams(systolic_mmhg=160.0, diastolic_mmhg=100.0),
            rng=np.random.default_rng(33),
        )
        r = cuff.measure(patient, rng=np.random.default_rng(34))
        assert r.systolic_mmhg == pytest.approx(160.0, abs=12.0)
        assert r.diastolic_mmhg == pytest.approx(100.0, abs=12.0)


class TestTiming:
    def test_measurement_takes_tens_of_seconds(self, reading):
        assert 20.0 < reading.measurement_duration_s < 120.0

    def test_interval_includes_rest(self):
        cuff = OscillometricCuff()
        assert cuff.measurement_interval_s() > cuff.measurement_interval_s(
            rest_s=0.0
        )

    def test_faster_deflation_quicker(self):
        patient = VirtualPatient(rng=np.random.default_rng(35))
        slow = OscillometricCuff(deflation_rate_mmhg_per_s=2.0).measure(
            patient, rng=np.random.default_rng(36)
        )
        patient2 = VirtualPatient(rng=np.random.default_rng(35))
        fast = OscillometricCuff(deflation_rate_mmhg_per_s=5.0).measure(
            patient2, rng=np.random.default_rng(36)
        )
        assert fast.measurement_duration_s < slow.measurement_duration_s


class TestEnvelope:
    def test_envelope_plateau_spans_map(self, reading):
        """The volume-swing envelope is high wherever the compliance
        bell fits inside [dia, sys]; the true MAP must lie in that
        high-envelope region."""
        high = reading.envelope_mmhg >= 0.9 * reading.envelope_mmhg.max()
        plateau_pressures = reading.cuff_pressure_mmhg[high]
        truth_map = 80.0 + 40.0 / 3.0
        assert plateau_pressures.min() - 3.0 <= truth_map
        assert truth_map <= plateau_pressures.max() + 3.0

    def test_map_by_formula(self, reading):
        expected = reading.diastolic_mmhg + (
            reading.systolic_mmhg - reading.diastolic_mmhg
        ) / 3.0
        assert reading.map_mmhg == pytest.approx(expected)

    def test_traces_same_length(self, reading):
        assert (
            reading.cuff_pressure_mmhg.size
            == reading.envelope_mmhg.size
            == reading.times_s.size
        )


class TestValidation:
    def test_rejects_bad_deflation(self):
        with pytest.raises(ConfigurationError):
            OscillometricCuff(deflation_rate_mmhg_per_s=0.0)

    def test_rejects_bad_widths(self):
        with pytest.raises(ConfigurationError):
            OscillometricCuff(width_above_map_mmhg=0.0)
        with pytest.raises(ConfigurationError):
            OscillometricCuff(width_below_map_mmhg=-1.0)
