"""Invasive catheter reference."""

import numpy as np
import pytest

from repro.baselines.catheter import CatheterReference
from repro.errors import ConfigurationError
from repro.physiology.patient import VirtualPatient


@pytest.fixture(scope="module")
def truth():
    patient = VirtualPatient(rng=np.random.default_rng(41))
    return patient.record(duration_s=10.0, sample_rate_hz=500.0)


class TestTracking:
    def test_tracks_waveform(self, truth):
        cath = CatheterReference(noise_mmhg=0.0)
        out = cath.measure(truth.pressure_mmhg, 500.0)
        # After initial settling, RMS error small.
        err = out[1000:] - truth.pressure_mmhg[1000:]
        assert np.sqrt(np.mean(err**2)) < 2.0

    def test_mean_preserved(self, truth):
        cath = CatheterReference()
        out = cath.measure(
            truth.pressure_mmhg, 500.0, rng=np.random.default_rng(42)
        )
        assert out[1000:].mean() == pytest.approx(
            truth.pressure_mmhg[1000:].mean(), abs=0.5
        )

    def test_noise_added(self, truth):
        quiet = CatheterReference(noise_mmhg=0.0)
        noisy = CatheterReference(noise_mmhg=1.0)
        a = quiet.measure(truth.pressure_mmhg, 500.0)
        b = noisy.measure(
            truth.pressure_mmhg, 500.0, rng=np.random.default_rng(43)
        )
        assert np.std(b - a) == pytest.approx(1.0, rel=0.15)


class TestLineDynamics:
    def test_underdamped_overshoot(self):
        cath = CatheterReference(damping_ratio=0.3, noise_mmhg=0.0)
        # Step response: overshoot matches the analytic value.
        step = np.concatenate([np.zeros(200), np.ones(2000)])
        out = cath.measure(step, 1000.0)
        overshoot = out.max() - 1.0
        assert overshoot == pytest.approx(
            cath.step_overshoot_fraction(), abs=0.05
        )

    def test_critically_damped_no_overshoot(self):
        cath = CatheterReference(damping_ratio=1.2, noise_mmhg=0.0)
        assert cath.step_overshoot_fraction() == 0.0
        step = np.concatenate([np.zeros(200), np.ones(2000)])
        out = cath.measure(step, 1000.0)
        assert out.max() < 1.02

    def test_resonance_rings_at_natural_frequency(self):
        cath = CatheterReference(
            natural_frequency_hz=15.0, damping_ratio=0.2, noise_mmhg=0.0
        )
        step = np.concatenate([np.zeros(100), np.ones(4000)])
        out = cath.measure(step, 1000.0)
        ringing = out[100:1100] - 1.0
        spectrum = np.abs(np.fft.rfft(ringing))
        freqs = np.fft.rfftfreq(1000, 1e-3)
        peak = freqs[np.argmax(spectrum[3:]) + 3]
        assert peak == pytest.approx(15.0, abs=2.0)


class TestValidation:
    def test_rejects_low_sample_rate(self, truth):
        cath = CatheterReference(natural_frequency_hz=15.0)
        with pytest.raises(ConfigurationError):
            cath.measure(truth.pressure_mmhg, 50.0)

    def test_rejects_bad_damping(self):
        with pytest.raises(ConfigurationError):
            CatheterReference(damping_ratio=0.0)
