"""Ideal Nyquist ADC baseline."""

import numpy as np
import pytest

from repro.baselines.ideal_adc import IdealADC
from repro.dsp.spectrum import analyze_tone, coherent_tone_frequency
from repro.errors import ConfigurationError


class TestQuantization:
    def test_lsb(self):
        adc = IdealADC(bits=12, full_scale=1.0)
        assert adc.lsb == pytest.approx(1.0 / 2048)

    def test_codes_bounded(self):
        adc = IdealADC(bits=8)
        codes = adc.convert(np.linspace(-2, 2, 100))
        assert codes.max() <= 127
        assert codes.min() >= -128

    def test_round_trip_error_half_lsb(self):
        adc = IdealADC(bits=10)
        rng = np.random.default_rng(3)
        x = rng.uniform(-0.9, 0.9, 1000)
        err = adc.convert_to_values(x) - x
        assert np.max(np.abs(err)) <= adc.lsb / 2 + 1e-12

    def test_noise_injection(self):
        adc = IdealADC(bits=16, noise_sigma=0.01)
        x = np.zeros(2000)
        out = adc.convert_to_values(x, rng=np.random.default_rng(4))
        assert np.std(out) == pytest.approx(0.01, rel=0.15)


class TestSNR:
    def test_textbook_formula(self):
        adc = IdealADC(bits=12)
        assert adc.ideal_snr_db() == pytest.approx(74.0, abs=0.1)
        assert adc.ideal_snr_db(0.5) == pytest.approx(67.98, abs=0.1)

    def test_measured_snr_matches_formula(self):
        adc = IdealADC(bits=10)
        n = 4096
        fs = 1000.0
        tone = coherent_tone_frequency(37.0, fs, n)
        t = np.arange(n) / fs
        x = 0.9 * np.sin(2 * np.pi * tone * t)
        vals = adc.convert_to_values(x)
        a = analyze_tone(vals, fs, tone_hz=tone)
        assert a.sndr_db == pytest.approx(adc.ideal_snr_db(0.9), abs=2.5)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ConfigurationError):
            IdealADC().ideal_snr_db(1.5)


class TestValidation:
    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            IdealADC(bits=1)

    def test_rejects_bad_full_scale(self):
        with pytest.raises(ConfigurationError):
            IdealADC(full_scale=0.0)
