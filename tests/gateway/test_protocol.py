"""Gateway wire protocol: control-plane packing and the two-plane demux."""

import numpy as np
import pytest

from repro.daq.usb import FrameEncoder
from repro.errors import ConfigurationError, FramingError
from repro.gateway.protocol import (
    ControlDemux,
    frame_sequence,
    heartbeat,
    pack_ack,
    pack_bye,
    pack_hello,
    split_frames,
)


def _data_payload(n_frames=2, spf=8, element=0):
    enc = FrameEncoder(samples_per_frame=spf)
    return enc.push(np.arange(n_frames * spf, dtype=np.int16), element)


class TestControlRoundTrip:
    def test_hello(self):
        _, events = ControlDemux().feed(pack_hello(0xDEADBEEF, resume=True))
        assert len(events) == 1
        assert events[0].kind == "hello"
        assert events[0].device_id == 0xDEADBEEF
        assert events[0].resume is True

    def test_hello_fresh(self):
        _, events = ControlDemux().feed(pack_hello(3))
        assert events[0].resume is False

    def test_ack(self):
        _, events = ControlDemux().feed(pack_ack(0xFFFF))
        assert events[0].kind == "ack"
        assert events[0].last_acked == 0xFFFF

    def test_ack_nothing_yet(self):
        _, events = ControlDemux().feed(pack_ack(None))
        assert events[0].last_acked is None

    def test_bye(self):
        _, events = ControlDemux().feed(pack_bye(123456, 7))
        assert events[0].kind == "bye"
        assert events[0].frames_framed == 123456
        assert events[0].faults_injected == 7

    def test_heartbeat(self):
        demux = ControlDemux()
        _, events = demux.feed(heartbeat() * 3)
        assert [e.kind for e in events] == ["heartbeat"] * 3
        assert demux.heartbeats == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pack_hello(2**32)
        with pytest.raises(ConfigurationError):
            pack_ack(0x10000)
        with pytest.raises(ConfigurationError):
            pack_bye(-1)


class TestDemuxInterleaving:
    def test_planes_split_cleanly(self):
        data = _data_payload(2)
        wire = (
            pack_hello(9)
            + data[:25]
            + heartbeat()
            + data[25:]
            + pack_bye(2, 0)
        )
        demux = ControlDemux()
        data_bytes, events = demux.feed(wire)
        assert data_bytes == data
        assert [e.kind for e in events] == ["hello", "heartbeat", "bye"]
        assert demux.buffered == 0

    def test_byte_at_a_time(self):
        data = _data_payload(2)
        wire = pack_hello(1) + data + pack_bye(2, 0)
        demux = ControlDemux()
        out, events = bytearray(), []
        for i in range(len(wire)):
            chunk_data, chunk_events = demux.feed(wire[i : i + 1])
            out += chunk_data
            events += chunk_events
        assert bytes(out) == data
        assert [e.kind for e in events] == ["hello", "bye"]

    def test_corrupt_control_frame_leaks_to_data_plane(self):
        broken = bytearray(pack_hello(5))
        broken[-1] ^= 0xFF  # break the CRC
        demux = ControlDemux()
        data_bytes, events = demux.feed(bytes(broken) + _data_payload(1))
        assert events == []
        assert demux.control_crc_errors == 1
        # The broken bytes went to the data plane (where the frame
        # decoder's resync scan accounts for them); the data frame
        # behind them still passes through intact.
        assert data_bytes.endswith(_data_payload(1))

    def test_unknown_escape_is_data(self):
        demux = ControlDemux()
        data_bytes, events = demux.feed(b"\x1b\x51hello")
        assert events == []
        assert data_bytes == b"\x1b\x51hello"

    def test_data_frames_not_crc_checked_here(self):
        # The demux passes claimed frames through even when corrupt —
        # CRC policing belongs to the frame decoder.
        data = bytearray(_data_payload(1))
        data[10] ^= 0xFF
        data_bytes, _ = ControlDemux().feed(bytes(data))
        assert data_bytes == bytes(data)

    def test_drain_surrenders_split_tail(self):
        data = _data_payload(1)
        demux = ControlDemux()
        data_bytes, _ = demux.feed(data[:10])
        assert data_bytes == b""
        assert demux.buffered == 10
        assert demux.drain() == data[:10]
        assert demux.buffered == 0


class TestFrameHelpers:
    def test_split_frames(self):
        data = _data_payload(3)
        frames = split_frames(data)
        assert len(frames) == 3
        assert b"".join(frames) == data
        assert [frame_sequence(f) for f in frames] == [0, 1, 2]

    def test_split_rejects_misalignment(self):
        with pytest.raises(FramingError):
            split_frames(b"\x00" + _data_payload(1))
        with pytest.raises(FramingError):
            split_frames(_data_payload(1)[:-1])

    def test_frame_sequence_rejects_garbage(self):
        with pytest.raises(FramingError):
            frame_sequence(b"\x00\x01\x02")
