"""BatchPlane scheduler: flush policy, lane lifecycle, telemetry."""

import asyncio

import numpy as np
import pytest

from repro.daq.usb import FrameEncoder
from repro.errors import ConfigurationError
from repro.gateway.batchplane import BatchPlane
from repro.gateway.connection import DeviceSession


def _payload(n_frames=3, spf=8):
    enc = FrameEncoder(samples_per_frame=spf)
    return enc.push(np.arange(n_frames * spf, dtype=np.int16), 0)


def _armed_session(plane, device_id=1, payload=None):
    session = DeviceSession(device_id=device_id)
    session.fresh_start()
    plane.attach(session)
    chunk = payload if payload is not None else _payload()
    assert session.offer(chunk)
    plane.notify(session, len(chunk))
    return session


class TestFlushPolicy:
    def test_size_flush_fires_immediately(self):
        async def scenario():
            # Deadline far away: only occupancy can trigger the tick.
            plane = BatchPlane(flush_bytes=8, max_latency_s=30.0)
            plane.start()
            session = _armed_session(plane)
            await asyncio.wait_for(plane.idle.wait(), timeout=5.0)
            await plane.stop()
            return plane, session

        plane, session = asyncio.run(scenario())
        assert session.decoder.frames_decoded == 3
        assert plane.size_flushes == 1
        assert plane.deadline_flushes == 0
        assert session.queue_empty.is_set()

    def test_deadline_flush_bounds_latency(self):
        async def scenario():
            # Occupancy target unreachable: only the deadline can fire.
            plane = BatchPlane(flush_bytes=1 << 30, max_latency_s=0.005)
            plane.start()
            session = _armed_session(plane)
            await asyncio.wait_for(plane.idle.wait(), timeout=5.0)
            await plane.stop()
            return plane, session

        plane, session = asyncio.run(scenario())
        assert session.decoder.frames_decoded == 3
        assert plane.deadline_flushes == 1
        assert plane.size_flushes == 0

    def test_one_tick_decodes_every_armed_lane(self):
        plane = BatchPlane(flush_bytes=1 << 30, max_latency_s=1.0)
        sessions = [
            _armed_session(plane, device_id=n) for n in range(4)
        ]
        plane.flush(cause="deadline")
        for session in sessions:
            assert session.decoder.frames_decoded == 3
            assert session.queue_empty.is_set()
        assert plane.ticks == 1
        assert plane.occupancy_max == 4
        assert plane.metrics()["occupancy_mean"] == 4.0
        assert plane.pending_bytes == 0
        assert plane.idle.is_set()

    def test_stop_drains_pending(self):
        async def scenario():
            plane = BatchPlane(flush_bytes=1 << 30, max_latency_s=30.0)
            plane.start()
            session = _armed_session(plane)
            await plane.stop()  # nothing fired yet: stop must flush
            return plane, session

        plane, session = asyncio.run(scenario())
        assert session.decoder.frames_decoded == 3
        assert plane.drain_flushes == 1


class TestLaneLifecycle:
    def test_flush_lane_decodes_one_backlog(self):
        plane = BatchPlane()
        session = _armed_session(plane)
        other = _armed_session(plane, device_id=2)
        assert plane.flush_lane(session) == 3
        # Only the resumed lane was decoded; the other stays armed.
        assert session.decoder.frames_decoded == 3
        assert other.decoder.frames_decoded == 0
        assert not plane.idle.is_set()
        # Idempotent: an unarmed lane flushes to nothing.
        assert plane.flush_lane(session) == 0

    def test_detach_discards_queued_bytes(self):
        plane = BatchPlane()
        session = _armed_session(plane)
        plane.detach(session)
        assert session.queue.qsize() == 0
        assert session.queue_empty.is_set()
        assert session.decoder.frames_decoded == 0  # discarded, not decoded
        assert plane.pending_bytes == 0
        assert plane.idle.is_set()
        assert not plane.lanes

    def test_detach_ignores_replaced_session(self):
        plane = BatchPlane()
        session = _armed_session(plane, device_id=7)
        replacement = DeviceSession(device_id=7)
        plane.attach(replacement)
        plane.detach(session)  # stale object: must not drop the lane
        assert plane.lanes[7] is replacement


class TestValidationAndMetrics:
    def test_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            BatchPlane(flush_bytes=0)
        with pytest.raises(ConfigurationError):
            BatchPlane(max_latency_s=0.0)

    def test_double_start_rejected(self):
        async def scenario():
            plane = BatchPlane()
            plane.start()
            try:
                with pytest.raises(ConfigurationError):
                    plane.start()
            finally:
                await plane.stop()

        asyncio.run(scenario())

    def test_metrics_account_flush_causes(self):
        plane = BatchPlane(flush_bytes=64, max_latency_s=0.5)
        _armed_session(plane)
        plane.flush(cause="size")
        _armed_session(plane, device_id=2)
        plane.flush(cause="deadline")
        m = plane.metrics()
        assert m["ticks"] == 2
        assert m["size_flushes"] == 1
        assert m["deadline_flushes"] == 1
        assert m["deadline_flush_fraction"] == 0.5
        assert m["frames_decoded"] == 6
        assert m["bytes_decoded"] == 2 * len(_payload())
        assert m["lanes"] == 2
        assert m["pending_bytes"] == 0
