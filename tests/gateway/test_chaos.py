"""The chaos harness at test scale: faults on, corruption counted."""

import asyncio
import json

from repro.gateway.chaos import CHAOS_KINDS, run_chaos


class TestChaos:
    def test_small_fleet_survives_audit(self):
        report = asyncio.run(
            run_chaos(
                n_devices=12,
                frames_per_device=60,
                samples_per_frame=16,
                faulty_fraction=0.5,
                fault_rate_hz=2.0,
                reconnect_every=25,
                seed=3,
            )
        )
        assert report.ok, report.failures
        assert report.devices == 12
        assert report.faulty_devices == 6
        assert report.frames_sent == 12 * 60
        # Faults were actually exercised, and every casualty is counted:
        # the harness already asserted frames_unaccounted == 0 per clean
        # device and >= 0 overall, plus bit-exact clean content.
        assert report.faults_injected > 0
        assert (
            report.frames_decoded
            + report.frames_lost
            + report.frames_unaccounted
            == report.frames_sent
        )
        assert report.samples_verified > 0
        assert report.clean_devices_exact == 6

    def test_report_is_json_able(self):
        report = asyncio.run(
            run_chaos(
                n_devices=4,
                frames_per_device=20,
                samples_per_frame=8,
                faulty_fraction=0.25,
                seed=1,
            )
        )
        blob = json.loads(json.dumps(report.as_dict()))
        assert blob["ok"] is True, blob["failures"]
        assert blob["devices"] == 4
        assert set(CHAOS_KINDS) == {
            "frame_drop",
            "frame_truncation",
            "frame_bitflip",
            "frame_reorder",
        }

    def test_fault_free_fleet_is_lossless(self):
        report = asyncio.run(
            run_chaos(
                n_devices=6,
                frames_per_device=40,
                samples_per_frame=16,
                faulty_fraction=0.0,
                seed=2,
            )
        )
        assert report.ok, report.failures
        assert report.faulty_devices == 0
        assert report.frames_decoded == report.frames_sent
        assert report.frames_lost == 0
        assert report.crc_errors == 0
        assert report.frames_unaccounted == 0
        assert report.clean_devices_exact == 6
