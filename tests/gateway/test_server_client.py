"""Gateway end-to-end: real sockets, real reconnects, exact content.

pytest-asyncio is not available here, so every test is a synchronous
function that owns its event loop via ``asyncio.run`` — which doubles as
a leak check: a dangling task would make loop close noisy/undead.
"""

import asyncio

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.errors import GatewayError
from repro.gateway.client import (
    DeviceClient,
    batch_chain_payloads,
    chain_payloads,
    expected_codes,
    synthetic_payloads,
)
from repro.gateway.server import GatewayServer


def _run(coro):
    return asyncio.run(coro)


async def _with_server(body, **server_kw):
    server = GatewayServer(**server_kw)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


class TestSingleDevice:
    def test_round_trip_is_bit_exact(self):
        frames, spf = 40, 32

        async def body(server):
            client = DeviceClient(
                server.host,
                server.port,
                device_id=7,
                payloads=synthetic_payloads(frames, spf),
            )
            report = await client.run()
            assert await server.drain()
            return report

        report = _run(_with_server(body))
        assert report.frames_sent == frames
        assert report.bye_sent
        assert report.acks_received >= 1

    def test_session_books_closed(self):
        frames, spf = 24, 16

        async def body(server):
            client = DeviceClient(
                server.host,
                server.port,
                device_id=3,
                payloads=synthetic_payloads(frames, spf),
            )
            await client.run()
            assert await server.drain()
            session = server.sessions[3]
            view = session.telemetry_view()
            assert session.bye_seen
            assert view.frames_framed == frames
            assert view.frames_decoded == frames
            assert view.lost_frames == 0
            assert view.crc_errors == 0
            assert view.frames_unaccounted == 0
            server.reconcile()
            got = session.codes(0)
            assert np.array_equal(got, expected_codes(frames, spf))

        _run(_with_server(body))

    def test_many_devices_isolated_sessions(self):
        ids = [11, 22, 33, 44]
        frames, spf = 10, 8

        async def body(server):
            clients = [
                DeviceClient(
                    server.host,
                    server.port,
                    device_id=d,
                    payloads=synthetic_payloads(frames, spf),
                )
                for d in ids
            ]
            await asyncio.gather(*(c.run() for c in clients))
            assert await server.drain()
            assert sorted(server.sessions) == ids
            for d in ids:
                view = server.sessions[d].telemetry_view()
                assert view.frames_decoded == frames
                assert view.frames_unaccounted == 0
            fleet = server.fleet_telemetry()
            assert fleet.frames_decoded == frames * len(ids)
            server.reconcile()

        _run(_with_server(body))


class TestReconnectResume:
    def test_forced_drops_lose_nothing(self):
        frames, spf = 30, 16

        async def body(server):
            client = DeviceClient(
                server.host,
                server.port,
                device_id=5,
                payloads=synthetic_payloads(frames, spf),
                drop_every=7,
                heartbeat_s=0.02,
            )
            report = await client.run()
            assert await server.drain()
            assert report.forced_drops == 4
            assert report.reconnects == 4
            session = server.sessions[5]
            view = session.telemetry_view()
            # Replay-on-resume covers every un-acked frame, so the books
            # close with zero loss; overlap lands as counted stale.
            assert view.frames_decoded == frames
            assert view.lost_frames == 0
            assert view.frames_unaccounted == 0
            assert session.reconnects == 4
            assert np.array_equal(
                session.codes(0), expected_codes(frames, spf)
            )
            server.reconcile()

        _run(_with_server(body))

    def test_fresh_hello_restarts_books(self):
        spf = 8

        async def body(server):
            for _ in range(2):
                client = DeviceClient(
                    server.host,
                    server.port,
                    device_id=9,
                    payloads=synthetic_payloads(5, spf),
                )
                await client.run()
                assert await server.drain()
            session = server.sessions[9]
            # Second run replaced the books: 5 frames, not 10.
            assert session.telemetry_view().frames_decoded == 5
            server.reconcile()

        _run(_with_server(body))


class TestChainEquivalence:
    def test_gateway_stream_matches_direct_chain(self):
        """A fault-free gateway transit of a full physics-chain stream is
        bit-identical to running the same chain directly."""
        n = 128 * 30
        t = np.arange(n) / 128000.0
        field = 2500.0 + 600.0 * np.sin(2 * np.pi * 8.0 * t)[:, None]
        field = np.repeat(field, 4, axis=1)

        direct = ReadoutChain(
            rng=np.random.default_rng(11), backend="fast"
        ).record_pressure(field, element=2)

        async def body(server):
            chain = ReadoutChain(
                rng=np.random.default_rng(11), backend="fast"
            )
            client = DeviceClient(
                server.host,
                server.port,
                device_id=2,
                payloads=chain_payloads(chain, field, element=2),
            )
            await client.run()
            assert await server.drain()
            return server.sessions[2].codes(2)

        via_gateway = _run(_with_server(body))
        assert np.array_equal(via_gateway, direct.codes)

    def test_batch_payloads_bitwise_match_per_device_runs(self):
        """One fused batched pass frames the same bytes per device as
        B independent chain_payloads runs — words, element tags and
        sequence numbers all included."""
        B = 3
        n = 128 * 20
        t = np.arange(n) / 128000.0
        base = 2500.0 + 600.0 * np.sin(2 * np.pi * 8.0 * t)
        fields = [
            np.repeat((base + 40.0 * l)[:, None], 4, axis=1)
            for l in range(B)
        ]

        singles = [
            b"".join(
                chain_payloads(
                    ReadoutChain(rng=np.random.default_rng(30 + l)),
                    fields[l],
                    element=2,
                )
            )
            for l in range(B)
        ]
        chains = [
            ReadoutChain(rng=np.random.default_rng(30 + l))
            for l in range(B)
        ]
        batched = batch_chain_payloads(chains, fields, element=2)
        for lane in range(B):
            assert b"".join(batched[lane]) == singles[lane]

    def test_batch_payloads_stream_through_gateway(self):
        """A two-device fleet generated by the batched kernel transits
        the gateway bit-exactly, device by device."""
        n = 128 * 16
        t = np.arange(n) / 128000.0
        base = 2500.0 + 500.0 * np.sin(2 * np.pi * 6.0 * t)
        fields = [
            np.repeat((base + 25.0 * l)[:, None], 4, axis=1)
            for l in range(2)
        ]
        direct = [
            ReadoutChain(rng=np.random.default_rng(60 + l)).record_pressure(
                fields[l], element=1
            )
            for l in range(2)
        ]

        async def body(server):
            chains = [
                ReadoutChain(rng=np.random.default_rng(60 + l))
                for l in range(2)
            ]
            fleet = batch_chain_payloads(chains, fields, element=1)
            clients = [
                DeviceClient(
                    server.host,
                    server.port,
                    device_id=l + 1,
                    payloads=fleet[l],
                )
                for l in range(2)
            ]
            await asyncio.gather(*(c.run() for c in clients))
            assert await server.drain()
            return [server.sessions[l + 1].codes(1) for l in range(2)]

        via_gateway = _run(_with_server(body))
        for lane in range(2):
            assert np.array_equal(via_gateway[lane], direct[lane].codes)


class TestFailureModes:
    def test_unreachable_gateway_raises_after_budget(self):
        async def body():
            client = DeviceClient(
                "127.0.0.1",
                1,  # nothing listens on port 1
                device_id=1,
                payloads=synthetic_payloads(1),
                max_retries=3,
                backoff=None,
            )
            client.backoff.initial_s = 0.001
            client.backoff.cap_s = 0.002
            with pytest.raises(GatewayError):
                await client.run()
            assert client.report.retries == 2

        _run(body())

    def test_handshake_timeout_counts_failure(self):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            data = await reader.read(64)  # gateway hangs up on us
            assert data == b""
            writer.close()
            await asyncio.sleep(0.01)
            assert server.handshake_failures == 1
            assert not server.sessions

        _run(_with_server(body, hello_timeout_s=0.05))

    def test_stop_is_clean_midstream(self):
        async def body():
            server = GatewayServer()
            await server.start()
            client = DeviceClient(
                server.host,
                server.port,
                device_id=4,
                payloads=synthetic_payloads(200, 64),
                pace_s=0.001,
                max_retries=2,
            )
            task = asyncio.create_task(client.run())
            await asyncio.sleep(0.03)
            await server.stop()
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, GatewayError, ConnectionError):
                pass
            # Whatever was decoded before the plug was pulled is still
            # accounted; finalize() ran for every session.
            for session in server.sessions.values():
                assert session.finalized
                session.reconcile()

        _run(body())
