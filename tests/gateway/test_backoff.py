"""Exponential backoff: growth, cap, jitter window, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.gateway.backoff import ExponentialBackoff


class TestSchedule:
    def test_deterministic_doubling_without_jitter(self):
        b = ExponentialBackoff(
            initial_s=0.1, multiplier=2.0, cap_s=10.0, jitter=0.0
        )
        assert [b.next_delay() for _ in range(5)] == [
            pytest.approx(d) for d in (0.1, 0.2, 0.4, 0.8, 1.6)
        ]
        assert b.attempts == 5

    def test_cap(self):
        b = ExponentialBackoff(
            initial_s=1.0, multiplier=10.0, cap_s=5.0, jitter=0.0
        )
        b.next_delay()
        assert b.next_delay() == pytest.approx(5.0)
        assert b.peek() == pytest.approx(5.0)

    def test_huge_attempt_count_does_not_overflow(self):
        b = ExponentialBackoff(jitter=0.0)
        b.attempts = 10_000
        assert b.peek() == pytest.approx(b.cap_s)

    def test_jitter_window(self):
        b = ExponentialBackoff(
            initial_s=1.0, multiplier=1.0, cap_s=1.0, jitter=0.5, rng=7
        )
        draws = [b.next_delay() for _ in range(200)]
        assert all(0.5 <= d <= 1.0 for d in draws)
        assert max(draws) - min(draws) > 0.1  # actually randomized

    def test_seeded_jitter_reproducible(self):
        a = ExponentialBackoff(rng=42)
        b = ExponentialBackoff(rng=42)
        assert [a.next_delay() for _ in range(6)] == [
            b.next_delay() for _ in range(6)
        ]

    def test_reset(self):
        b = ExponentialBackoff(initial_s=0.1, jitter=0.0)
        b.next_delay()
        b.next_delay()
        b.reset()
        assert b.attempts == 0
        assert b.next_delay() == pytest.approx(0.1)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(initial_s=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(initial_s=1.0, cap_s=0.5)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(jitter=1.5)
