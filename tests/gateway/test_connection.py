"""DeviceSession: backpressure, accounting and the telemetry view."""

import numpy as np
import pytest

from repro.daq.usb import FrameEncoder
from repro.errors import ConfigurationError
from repro.gateway.connection import DeviceSession
from repro.gateway.protocol import ControlEvent, pack_bye


def _payload(n_frames=3, spf=8, start_codes=0):
    enc = FrameEncoder(samples_per_frame=spf)
    return enc.push(
        np.arange(start_codes, start_codes + n_frames * spf, dtype=np.int16),
        0,
    )


def _bye_event(frames, faults=0):
    return ControlEvent("bye", frames_framed=frames, faults_injected=faults)


class TestBackpressure:
    def test_offer_sheds_counted_when_full(self):
        session = DeviceSession(device_id=1, queue_chunks=2)
        assert session.offer(b"a")
        assert session.offer(b"b")
        assert not session.offer(b"ccc")  # full: shed, never blocked
        assert session.chunks_shed == 1
        assert session.bytes_shed == 3
        assert session.queue.qsize() == 2
        assert session.queue_depth_peak == 2

    def test_empty_chunk_is_free(self):
        session = DeviceSession(device_id=1, queue_chunks=1)
        assert session.offer(b"")
        assert session.queue.qsize() == 0

    def test_queue_bound_validated(self):
        with pytest.raises(ConfigurationError):
            DeviceSession(device_id=1, queue_chunks=0)

    def test_shed_frames_surface_as_lost(self):
        session = DeviceSession(device_id=1)
        session.fresh_start()
        payload = _payload(3)
        size = len(payload) // 3
        session.decode(payload[:size])  # frame 0 arrives
        # frame 1 was shed (never decoded); frame 2 reveals the gap
        session.decode(payload[2 * size :])
        assert session.decoder.lost_frames == 1
        view = session.telemetry_view()
        assert view.frames_decoded == 2
        assert view.frames_framed == 3  # closed at decoded + lost


class TestAccounting:
    def test_decode_updates_telemetry(self):
        session = DeviceSession(device_id=1)
        n = session.decode(_payload(2))
        assert n == 2
        tm = session.telemetry
        assert tm.frames_decoded == 2
        assert tm.words_delivered == 16
        assert tm.chunks == 1
        assert tm.stage_seconds["decode"] > 0.0

    def test_bye_closes_conservation(self):
        session = DeviceSession(device_id=1)
        session.fresh_start()
        session.decode(_payload(2))
        session.note_bye(_bye_event(frames=3, faults=1))
        view = session.telemetry_view()
        assert view.frames_framed == 3
        assert view.faults_injected == 1
        assert view.frames_unaccounted == 1  # the tail frame that died
        session.reconcile()  # faults reported -> relaxation applies
        # finalize closes the books: the tail frame that produced
        # neither a decode nor a sequence gap is booked as lost.
        session.finalize()
        view = session.telemetry_view()
        assert session.tail_lost_frames == 1
        assert view.lost_frames == 1
        assert view.frames_unaccounted == 0
        session.reconcile()

    def test_finalize_books_no_tail_when_everything_arrived(self):
        session = DeviceSession(device_id=1)
        session.fresh_start()
        session.decode(_payload(3))
        session.note_bye(_bye_event(frames=3))
        session.finalize()
        view = session.telemetry_view()
        assert session.tail_lost_frames == 0
        assert view.frames_unaccounted == 0
        session.reconcile()

    def test_without_bye_books_close_at_evidence(self):
        session = DeviceSession(device_id=1)
        session.decode(_payload(2))
        view = session.telemetry_view()
        assert view.frames_framed == 2
        assert view.frames_unaccounted == 0
        session.reconcile()

    def test_reconcile_strict_when_clean(self):
        session = DeviceSession(device_id=1)
        session.fresh_start()
        session.decode(_payload(2))
        session.reconcile()

    def test_last_acked_tracks_decoder(self):
        session = DeviceSession(device_id=1)
        assert session.last_acked is None
        session.fresh_start()
        assert session.last_acked == 0xFFFF  # expecting 0: nothing yet
        session.decode(_payload(2))
        assert session.last_acked == 1

    def test_finalize_idempotent_and_drains_demux(self):
        session = DeviceSession(device_id=1)
        payload = _payload(1)
        # Half a frame through the demux: stays buffered...
        data, _ = session.demux(payload[:10])
        session.offer(data)
        assert session._demux.buffered == 10
        # ...until finalize hands it to the decoder (which waits for the
        # rest, then abandons the claim).
        session.decode(payload[10:])  # worker processed the later chunk
        session.finalize()
        session.finalize()
        assert session.finalized
        assert session._demux.buffered == 0

    def test_metrics_json_able(self):
        import json

        session = DeviceSession(device_id=3)
        session.decode(_payload(2))
        session.note_bye(_bye_event(2))
        blob = json.dumps(session.metrics())
        assert '"device_id": 3' in blob

    def test_codes_returns_decoded_words(self):
        session = DeviceSession(device_id=1)
        session.decode(_payload(2))
        assert np.array_equal(session.codes(0), np.arange(16))


class TestControlPath:
    def test_demux_beats_watchdog(self):
        t = {"now": 0.0}
        session = DeviceSession(device_id=1, clock=lambda: t["now"])
        session.watchdog._clock = lambda: t["now"]
        session.watchdog._last_beat = 0.0
        t["now"] = 10.0
        session.demux(b"\x10")
        assert session.watchdog.silence_s == 0.0

    def test_bye_bytes_via_demux(self):
        session = DeviceSession(device_id=1)
        data, events = session.demux(pack_bye(5, 2))
        assert data == b""
        assert events[0].kind == "bye"
        session.note_bye(events[0])
        assert session.bye_seen
        assert session.frames_reported == 5
        assert session.faults_reported == 2
