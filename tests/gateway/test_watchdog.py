"""Watchdog state machine, driven by a fake clock (no sleeping)."""

import pytest

from repro.errors import ConfigurationError
from repro.gateway.watchdog import ConnectionState, Watchdog


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def dog(clock):
    return Watchdog(
        degraded_after_s=2.0,
        reconnecting_after_s=5.0,
        dead_after_s=15.0,
        clock=clock,
    )


class TestRamp:
    def test_silence_walks_the_full_ramp(self, dog, clock):
        assert dog.check() is ConnectionState.HEALTHY
        clock.t = 2.0
        assert dog.check() is ConnectionState.DEGRADED
        assert dog.trips == 1
        clock.t = 5.0
        assert dog.check() is ConnectionState.RECONNECTING
        clock.t = 15.0
        assert dog.check() is ConnectionState.DEAD

    def test_ramp_is_one_way(self, dog, clock):
        clock.t = 6.0
        assert dog.check() is ConnectionState.RECONNECTING
        # A stray late beat refreshes the clock but cannot un-abandon
        # the socket; only revive() recovers from RECONNECTING.
        dog.beat()
        assert dog.check() is ConnectionState.RECONNECTING

    def test_trips_counted_once_per_descent(self, dog, clock):
        clock.t = 3.0
        dog.check()
        clock.t = 6.0
        dog.check()  # deeper, same descent
        assert dog.trips == 1

    def test_skipping_straight_to_dead(self, dog, clock):
        clock.t = 100.0
        assert dog.check() is ConnectionState.DEAD
        assert dog.trips == 1


class TestRecovery:
    def test_degraded_self_recovers_on_traffic(self, dog, clock):
        clock.t = 3.0
        assert dog.check() is ConnectionState.DEGRADED
        dog.beat()
        assert dog.state is ConnectionState.HEALTHY
        assert dog.revivals == 1
        clock.t = 4.0
        assert dog.check() is ConnectionState.HEALTHY

    def test_revive_from_reconnecting(self, dog, clock):
        clock.t = 6.0
        dog.check()
        assert dog.revive() is True
        assert dog.state is ConnectionState.HEALTHY
        assert dog.revivals == 1
        clock.t = 7.0
        assert dog.check() is ConnectionState.HEALTHY  # clock refreshed

    def test_dead_is_terminal(self, dog, clock):
        clock.t = 20.0
        dog.check()
        assert dog.revive() is False
        dog.beat()
        assert dog.state is ConnectionState.DEAD
        assert dog.check() is ConnectionState.DEAD

    def test_silence_property(self, dog, clock):
        clock.t = 1.5
        assert dog.silence_s == pytest.approx(1.5)
        dog.beat()
        clock.t = 2.0
        assert dog.silence_s == pytest.approx(0.5)


class TestDisconnected:
    def test_disconnect_goes_straight_to_reconnecting(self, dog):
        dog.disconnected()
        assert dog.state is ConnectionState.RECONNECTING
        assert dog.trips == 1

    def test_disconnect_from_degraded_keeps_trip_count(self, dog, clock):
        clock.t = 3.0
        dog.check()
        dog.disconnected()
        assert dog.state is ConnectionState.RECONNECTING
        assert dog.trips == 1  # the descent was already counted

    def test_disconnect_after_dead_is_noop(self, dog, clock):
        clock.t = 20.0
        dog.check()
        dog.disconnected()
        assert dog.state is ConnectionState.DEAD


class TestValidation:
    def test_threshold_ordering_enforced(self, clock):
        with pytest.raises(ConfigurationError):
            Watchdog(5.0, 2.0, 15.0, clock=clock)
        with pytest.raises(ConfigurationError):
            Watchdog(0.0, 2.0, 15.0, clock=clock)
        with pytest.raises(ConfigurationError):
            Watchdog(2.0, 5.0, 4.0, clock=clock)
