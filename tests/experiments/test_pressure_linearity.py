"""Pressure-linearity experiment at reduced scale."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_pressure_linearity


@pytest.fixture(scope="module")
def result():
    return run_pressure_linearity(
        amplitudes_pa=np.array([2.7e3, 40e3]), n_fft=1024
    )


class TestPressureLinearity:
    def test_thd_is_noise_limited(self, result):
        """The central (negative) finding: no harmonic rises above the
        noise floor anywhere."""
        assert np.all(result.thd_db < -20.0)

    def test_snr_grows_with_drive(self, result):
        assert result.snr_db[-1] > result.snr_db[0] + 10.0

    def test_membrane_inl_tiny_and_monotone(self, result):
        assert result.membrane_inl[0] < 1e-5
        assert result.membrane_inl[-1] < 1e-3
        assert result.membrane_inl[-1] > result.membrane_inl[0]

    def test_rows(self, result):
        rows = result.rows()
        assert any("transducer limits linearity" in r[0] for r in rows)

    def test_rejects_nonpositive_amplitudes(self):
        with pytest.raises(ConfigurationError):
            run_pressure_linearity(amplitudes_pa=np.array([-1.0]))
