"""The IMG pressure-imaging harness at reduced scale."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_imaging


class TestImagingHarness:
    @pytest.fixture(scope="class")
    def result(self):
        # A fast pulse keeps the one-period-per-element dwell short
        # enough for a full chain scan in a unit test.
        return run_imaging(rows=4, cols=5, pulse_rate_hz=5.0)

    def test_amplitude_map_from_chain_scan(self, result):
        assert result.array_shape == (4, 5)
        assert result.amplitude_map.shape == (4, 5)
        assert np.all(np.isfinite(result.amplitude_map))
        assert result.amplitude_map.max() > 0

    def test_artery_line_recovered_subpixel(self, result):
        # "Sub-pixel" at wrist scale: the 0.6 mm pitch bounds the error.
        assert result.transverse_error_m < 0.6e-3
        assert abs(result.est_angle_rad) < 0.5

    def test_fusion_never_loses_to_strongest(self, result):
        assert result.fusion_gain_predicted >= 1.0
        assert result.fusion_gain_measured > 0.9

    def test_registration_tracks_drift(self, result):
        assert result.registration_error_m < 0.3e-3

    def test_scan_timetable(self, result):
        assert result.frame_rate_banked_hz == pytest.approx(
            5 * result.frame_rate_shared_hz
        )
        assert result.truncated_words >= 0

    def test_rows_render(self, result):
        rows = result.rows()
        assert any("frame rate" in r[0] for r in rows)
        assert all(len(r) == 3 for r in rows)

    def test_rejects_degenerate_array(self):
        with pytest.raises(ConfigurationError):
            run_imaging(rows=1, cols=8)
        with pytest.raises(ConfigurationError):
            run_imaging(rows=8, cols=2)
