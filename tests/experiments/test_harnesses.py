"""Experiment harnesses at reduced scale: structure + shape checks.

Full-length runs live in ``benchmarks/``; here each harness runs at the
smallest scale that still exercises every code path, and the *shape*
assertions from DESIGN.md §4 are verified.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_baseline_comparison,
    run_feedback_ablation,
    run_fig7,
    run_fig9,
    run_localization,
    run_membrane_transfer,
    run_mux_settling,
    run_osr_ablation,
    run_table_specs,
)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(n_fft=2048, settle_words=64)

    def test_meets_spec_at_reduced_length(self, result):
        # Shorter record -> slightly noisier estimate; 70 dB floor.
        assert result.snr_db > 70.0

    def test_enob_near_12(self, result):
        assert result.analysis.enob_bits == pytest.approx(11.7, abs=0.5)

    def test_float_path_better(self, result):
        assert result.float_path_analysis.snr_db > result.snr_db + 5.0

    def test_rows_structure(self, result):
        rows = result.rows()
        assert all(len(r) == 3 for r in rows)
        assert any("SNR" in r[0] for r in rows)

    def test_spectrum_series(self, result):
        freqs, db = result.spectrum_db()
        assert freqs.size == db.size
        assert db.max() == pytest.approx(0.0, abs=0.1)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(duration_s=8.0)

    def test_errors_few_mmhg(self, result):
        assert abs(result.result.systolic_error_mmhg) < 6.0
        assert abs(result.result.diastolic_error_mmhg) < 6.0

    def test_morphology(self, result):
        assert result.dicrotic_notch_detected

    def test_pulse_rate(self, result):
        assert abs(result.pulse_rate_error_bpm) < 4.0

    def test_rows(self, result):
        assert len(result.rows()) == 8


class TestTableSpecs:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table_specs(n_fft=2048)

    def test_conversion_rate(self, table):
        assert table.output_rate_hz == pytest.approx(1000.0)

    def test_power_matches_paper(self, table):
        assert table.power_w == pytest.approx(11.5e-3, rel=1e-6)

    def test_enob(self, table):
        assert table.enob_bits > 11.0

    def test_array_fits(self, table):
        assert table.array_span_ok

    def test_decimator_ablation_ordering(self, table):
        """Float sinc-only and brickwall (no 12-bit quantizer) beat the
        12-bit-limited production chain."""
        assert table.sinc_only_snr_db > table.snr_db
        assert table.brickwall_snr_db > table.snr_db


class TestMembraneTransfer:
    def test_rows_and_shapes(self):
        r = run_membrane_transfer(n_points=21)
        assert r.pressures_pa.size == 21
        assert r.capacitances_f.size == 21
        assert r.max_linearity_error_fraction < 1e-3
        assert len(r.rows()) == 7


class TestMuxSettling:
    def test_filter_limited(self):
        r = run_mux_settling(n_words=64)
        assert r.timing.dominant == "filter"
        assert r.electrical_to_filter_ratio < 1e-3
        assert 1 <= r.empirical_settle_words <= 24


class TestLocalization:
    @pytest.fixture(scope="class")
    def result(self):
        return run_localization(n_offsets=9)

    def test_selection_beats_fixed(self, result):
        assert result.selection_advantage > 1.0

    def test_centroid_better_than_half_span(self, result):
        # 8x8 array spans ~1.15 mm; localization should beat random.
        assert np.median(result.centroid_error_m) < 1.0e-3


class TestAblations:
    def test_osr_slopes(self):
        r = run_osr_ablation(osrs=np.array([32, 64, 128]), n_out=1024)
        assert r.slope_2nd_bits_per_octave == pytest.approx(2.5, abs=0.7)
        assert r.slope_1st_bits_per_octave == pytest.approx(1.5, abs=0.6)
        assert r.slope_2nd_bits_per_octave > r.slope_1st_bits_per_octave

    def test_feedback_optimum_below_nominal(self):
        r = run_feedback_ablation(
            cfb_ratios=np.array([1.5, 1.0, 0.75, 0.5]), n_out=1024
        )
        assert r.best_ratio <= 1.0
        # Deep reduction destabilizes: clipping fraction rises.
        assert r.clipped_fraction[-1] > r.clipped_fraction[1]


@pytest.mark.slow
class TestBaselineComparison:
    def test_ordering(self):
        r = run_baseline_comparison(duration_s=90.0)
        assert r.catheter_rmse < r.cuff_rmse
        assert r.tonometer_rmse < r.cuff_rmse
        assert r.cuff_readings >= 1
