"""The extended experiment harnesses at reduced scale."""

import numpy as np
import pytest

from repro.experiments import (
    run_architecture_comparison,
    run_dynamic_range,
    run_noise_budget,
    run_robustness,
)


class TestDynamicRange:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dynamic_range(
            amplitudes_dbfs=np.array([-50.0, -30.0, -10.0, -3.0]),
            n_fft=1024,
        )

    def test_monotone_to_peak(self, result):
        assert np.all(np.diff(result.snr_db) > 0)

    def test_roughly_1db_per_db(self, result):
        slope = (result.snr_db[1] - result.snr_db[0]) / 20.0
        assert slope == pytest.approx(1.0, abs=0.25)

    def test_rows(self, result):
        assert len(result.rows()) == 4

    def test_rejects_positive_dbfs(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_dynamic_range(amplitudes_dbfs=np.array([3.0]))


class TestNoiseBudget:
    @pytest.fixture(scope="class")
    def result(self):
        return run_noise_budget(n_fft=1024)

    def test_all_cases_measured(self, result):
        assert len(result.labels) == 7
        assert np.all(np.isfinite(result.snr_db))

    def test_twelve_bit_path_is_binding(self, result):
        """Production SNR barely moves while float SNR spreads."""
        assert np.ptp(result.snr_db) < 5.0
        assert np.ptp(result.snr_float_db) > 5.0

    def test_shaped_vs_unshaped(self, result):
        _, offset_f = result.by_label("comparator offset only (100 mV)")
        _, ref_f = result.by_label("reference noise only (1 mVref)")
        assert offset_f > ref_f  # shaped imperfection beats un-shaped


class TestArchitectures:
    @pytest.fixture(scope="class")
    def result(self):
        return run_architecture_comparison(n_out=1024)

    def test_third_order_wins(self, result):
        assert result.by_label("3rd order, 1 bit") > result.by_label(
            "2nd order, 1 bit (paper)"
        )

    def test_dwa_textbook_shape(self, result):
        ideal = result.by_label("2nd order, 3 bit, ideal DAC")
        fixed = result.by_label("2nd order, 3 bit, 0.3% mismatch, fixed")
        dwa = result.by_label("2nd order, 3 bit, 0.3% mismatch, DWA")
        assert fixed < ideal
        assert dwa > fixed

    def test_rows(self, result):
        assert len(result.rows()) == 5


class TestRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_robustness(duration_s=20.0)

    def test_artifact_defense(self, result):
        assert result.artifact_sensitivity > 0.7
        assert result.artifact_specificity > 0.6

    def test_drift_figures(self, result):
        assert 0.0 < result.warmup_gain_drift_fraction < 0.02
        assert result.drift_error_uncorrected_mmhg < 2.0

    def test_servo(self, result):
        error = abs(result.servo_found_pa - result.servo_true_optimum_pa)
        assert error < 0.15 * result.servo_true_optimum_pa

    def test_rejects_short(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_robustness(duration_s=5.0)
