"""Regression: parallel fan-out never changes experiment results.

The executor's contract (docs/THEORY.md §8) is that ``jobs`` is pure
scheduling: every harness must produce bit-identical arrays for any
worker count. These tests pin that for the population protocol, the
design-space grid, the ablation sweeps and the element scan.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.experiments import (
    run_chopper_ablation,
    run_design_space,
    run_feedback_ablation,
    run_osr_ablation,
    run_population,
    run_robustness_sweep,
)
from repro.params import NonidealityParams, SystemParams


class TestPopulationEquivalence:
    def test_population_bit_identical_across_jobs(self):
        serial = run_population(n_subjects=4, duration_s=6.0, jobs=1)
        pooled = run_population(n_subjects=4, duration_s=6.0, jobs=4)
        assert np.array_equal(
            serial.systolic_errors_mmhg, pooled.systolic_errors_mmhg
        )
        assert np.array_equal(
            serial.diastolic_errors_mmhg, pooled.diastolic_errors_mmhg
        )
        assert np.array_equal(
            serial.waveform_rms_mmhg, pooled.waveform_rms_mmhg
        )
        assert serial.subjects == pooled.subjects

    def test_population_chunking_is_pure_scheduling(self):
        a = run_population(n_subjects=4, duration_s=6.0, jobs=2, chunk_size=1)
        b = run_population(n_subjects=4, duration_s=6.0, jobs=2, chunk_size=4)
        assert np.array_equal(a.systolic_errors_mmhg, b.systolic_errors_mmhg)

    def test_population_telemetry_reconciles(self):
        result = run_population(n_subjects=4, duration_s=6.0, jobs=2)
        result.telemetry.reconcile()
        assert result.telemetry.tasks_completed == 4
        # Worker-side chain construction hits the warm FIR/membrane cache.
        assert result.telemetry.cache_hits > 0


class TestGridEquivalence:
    def test_design_space_grid_bit_identical_across_jobs(self):
        serial = run_design_space(n_out=128, jobs=1)
        pooled = run_design_space(n_out=128, jobs=4)
        assert np.array_equal(serial.enob, pooled.enob)
        assert serial.pareto_front() == pooled.pareto_front()

    def test_osr_ablation_bit_identical_across_jobs(self):
        serial = run_osr_ablation(n_out=256, jobs=1)
        pooled = run_osr_ablation(n_out=256, jobs=3)
        assert np.array_equal(serial.enob_2nd, pooled.enob_2nd)
        assert np.array_equal(serial.enob_1st, pooled.enob_1st)
        assert (
            serial.slope_2nd_bits_per_octave
            == pooled.slope_2nd_bits_per_octave
        )

    def test_feedback_ablation_bit_identical_across_jobs(self):
        serial = run_feedback_ablation(n_out=512, jobs=1)
        pooled = run_feedback_ablation(n_out=512, jobs=2)
        assert np.array_equal(
            serial.snr_db, pooled.snr_db, equal_nan=True
        )
        assert np.array_equal(
            serial.clipped_fraction, pooled.clipped_fraction
        )

    def test_chopper_ablation_bit_identical_across_jobs(self):
        serial = run_chopper_ablation(n_out=512, jobs=1)
        pooled = run_chopper_ablation(n_out=512, jobs=2)
        assert serial.snr_off_db == pooled.snr_off_db
        assert serial.snr_on_db == pooled.snr_on_db

    def test_robustness_sweep_bit_identical_across_jobs(self):
        serial = run_robustness_sweep(n_trials=3, jobs=1)
        pooled = run_robustness_sweep(n_trials=3, jobs=3)
        assert np.array_equal(
            serial.sys_error_with_rejection_mmhg,
            pooled.sys_error_with_rejection_mmhg,
        )
        assert np.array_equal(serial.servo_error_pa, pooled.servo_error_pa)


@pytest.fixture()
def scan_field():
    params = SystemParams()
    fs = params.modulator.sampling_rate_hz
    dwell_s = 0.2
    n = int(dwell_s * fs) * 4
    t = np.arange(n) / fs
    weights = np.array([0.3, 1.0, 0.5, 0.1])
    field = 2000.0 * np.sin(2 * np.pi * 1.3 * t)[:, None] * weights[None, :]
    return params, field, dwell_s


class TestScanEquivalence:
    def test_scan_bit_identical_across_jobs(self, scan_field):
        params, field, dwell_s = scan_field
        serial = ReadoutChain(
            params, rng=np.random.default_rng(7)
        ).scan_elements(field, dwell_s=dwell_s, jobs=1)
        pooled = ReadoutChain(
            params, rng=np.random.default_rng(7)
        ).scan_elements(field, dwell_s=dwell_s, jobs=4)
        assert np.array_equal(serial, pooled)

    def test_parallel_scan_matches_batched_when_noiseless(self, scan_field):
        params, field, dwell_s = scan_field
        ideal = dataclasses.replace(
            params, nonideality=NonidealityParams.ideal()
        )
        batched = ReadoutChain(
            ideal, rng=np.random.default_rng(7)
        ).scan_elements(field, dwell_s=dwell_s, batched=True)
        parallel = ReadoutChain(
            ideal, rng=np.random.default_rng(7)
        ).scan_elements(field, dwell_s=dwell_s, jobs=2)
        assert np.array_equal(batched, parallel)

    def test_parallel_scan_decorrelates_element_noise(self, scan_field):
        params, field, dwell_s = scan_field
        chain = ReadoutChain(params, rng=np.random.default_rng(7))
        records = chain.scan_elements(field, dwell_s=dwell_s, jobs=1)
        # Elements 0 and 3 see the same waveform at different couplings;
        # if their noise replayed identical draws, the scaled residuals
        # would match exactly.
        assert not np.allclose(records[:, 0] / 0.3, records[:, 3] / 0.1)
