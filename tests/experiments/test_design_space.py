"""Design-space experiment at reduced scale."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_design_space


@pytest.fixture(scope="module")
def result():
    return run_design_space(
        orders=(1, 2, 3), osrs=np.array([32, 64, 128]), n_out=1024
    )


class TestGrid:
    def test_shape(self, result):
        assert result.enob.shape == (3, 3)
        assert np.all(np.isfinite(result.enob))

    def test_monotone_in_osr(self, result):
        for i in range(3):
            assert np.all(np.diff(result.enob[i]) > 0)

    def test_monotone_in_order(self, result):
        for j in range(3):
            assert np.all(np.diff(result.enob[:, j]) > 0)

    def test_rates(self, result):
        assert result.conversion_rates_hz == pytest.approx(
            [4000.0, 2000.0, 1000.0]
        )


class TestQueries:
    def test_pareto_sorted_and_nondominated(self, result):
        front = result.pareto_front()
        rates = [p[0] for p in front]
        enobs = [p[1] for p in front]
        assert rates == sorted(rates)
        # Along the front, higher rate must mean lower ENOB.
        assert enobs == sorted(enobs, reverse=True)

    def test_best_at_rate(self, result):
        order, osr, enob = result.best_at_rate(1000.0)
        assert order == 3
        assert osr == 128
        assert enob == result.enob[2, 2]

    def test_rows(self, result):
        rows = result.rows()
        assert len(rows) == 4
        assert any("Pareto" in r[0] for r in rows)

    def test_rejects_bad_order(self):
        with pytest.raises(ConfigurationError):
            run_design_space(orders=(5,), n_out=1024)
