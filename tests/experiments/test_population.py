"""Population experiment at reduced scale."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_population


@pytest.fixture(scope="module")
def result():
    return run_population(n_subjects=4, duration_s=6.0)


class TestPopulation:
    def test_all_subjects_measured(self, result):
        assert result.n_subjects == 4
        assert np.all(np.isfinite(result.systolic_errors_mmhg))
        assert np.all(np.isfinite(result.diastolic_errors_mmhg))

    def test_errors_bounded(self, result):
        assert np.max(np.abs(result.systolic_errors_mmhg)) < 12.0
        assert np.max(np.abs(result.diastolic_errors_mmhg)) < 12.0

    def test_subject_diversity(self, result):
        systolics = [s["systolic"] for s in result.subjects]
        assert max(systolics) - min(systolics) > 10.0

    def test_rows(self, result):
        rows = result.rows()
        assert any("AAMI" in r[1] for r in rows)

    def test_rejects_too_few(self):
        with pytest.raises(ConfigurationError):
            run_population(n_subjects=2)

    def test_reproducible(self):
        a = run_population(n_subjects=3, duration_s=6.0, seed=5)
        b = run_population(n_subjects=3, duration_s=6.0, seed=5)
        assert a.systolic_errors_mmhg == pytest.approx(
            b.systolic_errors_mmhg
        )
