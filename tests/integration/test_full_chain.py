"""Cross-module integration: the whole signal path, varied configurations."""

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.dsp.spectrum import analyze_tone, coherent_tone_frequency
from repro.params import (
    ArrayParams,
    DecimationParams,
    ModulatorParams,
    NonidealityParams,
    SystemParams,
)


class TestAlternativeConfigurations:
    def test_osr64_system(self):
        """A 2 kS/s variant (the paper's 'increased conversion rate')."""
        params = SystemParams(
            modulator=ModulatorParams(osr=64),
            decimation=DecimationParams(
                cic_decimation=16, fir_decimation=4, cutoff_hz=900.0
            ),
        )
        chain = ReadoutChain(params, rng=np.random.default_rng(80))
        assert chain.output_rate_hz == pytest.approx(2000.0)
        rec = chain.record_voltage(np.zeros(64 * 64))
        assert rec.codes.size == 64

    def test_larger_array_system(self):
        params = SystemParams(array=ArrayParams(rows=4, cols=4))
        chain = ReadoutChain(params, rng=np.random.default_rng(81))
        assert chain.chip.array.n_elements == 16
        field = np.zeros((128 * 8, 16))
        rec = chain.record_pressure(field, element=10)
        assert rec.element == 10

    def test_ideal_analog_beats_noisy(self):
        n_fft = 1024
        tone = coherent_tone_frequency(15.625, 1000.0, n_fft)

        def snr_for(ni):
            params = SystemParams(nonideality=ni)
            chain = ReadoutChain(params, rng=np.random.default_rng(82))
            n_mod = (n_fft + 64) * 128
            t = np.arange(n_mod) / 128e3
            rec = chain.record_voltage(
                0.8 * 2.5 * np.sin(2 * np.pi * tone * t)
            )
            return analyze_tone(
                rec.values[64 : 64 + n_fft], 1000.0, tone_hz=tone,
                max_band_hz=500.0,
            ).snr_db

        harsh = NonidealityParams(
            sampling_cap_f=3e-15, opamp_gain=60.0, clock_jitter_s=2e-9
        )
        assert snr_for(NonidealityParams.ideal()) > snr_for(harsh) + 3.0


class TestEndToEndConsistency:
    def test_voltage_and_capacitive_paths_agree(self):
        """A capacitance step and the equivalent voltage step produce the
        same codes (the two front ends are interchangeable by design)."""
        params = SystemParams(
            array=ArrayParams(capacitance_mismatch_sigma=0.0),
            nonideality=NonidealityParams.ideal(),
        )
        n = 128 * 48
        chain = ReadoutChain(params, rng=np.random.default_rng(83))
        pressure = 15000.0
        field = np.full((n, 4), pressure)
        rec_cap = chain.record_pressure(field, element=0)

        # Equivalent loop input via the voltage path.
        cap = chain.chip.array.elements[0].capacitance_f(pressure)[0]
        u = chain.chip.frontend.loop_input(cap)
        chain2 = ReadoutChain(params, rng=np.random.default_rng(83))
        rec_v = chain2.record_voltage(
            np.full(n, float(u) * params.modulator.vref_v)
        )
        a = rec_cap.values[16:]
        b = rec_v.values[16:]
        assert a.mean() == pytest.approx(b.mean(), abs=2e-3)

    def test_codes_deterministic_for_fixed_seed(self):
        params = SystemParams()
        n = 128 * 16

        def run():
            chain = ReadoutChain(params, rng=np.random.default_rng(84))
            return chain.record_voltage(np.zeros(n)).codes

        assert np.array_equal(run(), run())
