"""Streaming invariants across the full digital path."""

import numpy as np
import pytest

from repro.daq.fpga import FPGAFilterBank
from repro.daq.stream import SampleStream
from repro.daq.usb import FrameDecoder
from repro.dsp.decimator import DecimationFilter


def random_bits(n, seed=0):
    return np.random.default_rng(seed).choice([-1, 1], size=n).astype(np.int64)


class TestFilterStreaming:
    @pytest.mark.parametrize("chunks", [[8192], [100, 8092], [1, 127, 8064]])
    def test_decimator_chunking_invariant(self, chunks):
        bits = random_bits(8192, seed=5)
        whole = DecimationFilter().process(bits).codes
        filt = DecimationFilter()
        out = []
        start = 0
        for c in chunks:
            out.append(filt.process(bits[start : start + c]).codes)
            start += c
        assert np.array_equal(np.concatenate(out), whole)


class TestFPGAToHost:
    def test_full_digital_path_preserves_codes(self):
        """FPGA filter -> frames -> decoder -> stream reproduces exactly
        the codes the bare filter computes."""
        bits = random_bits(128 * 200, seed=6)
        bare = DecimationFilter().process(bits).codes

        fpga = FPGAFilterBank(samples_per_frame=32, flush_words_on_switch=0)
        payload = b""
        for i in range(0, bits.size, 1000):
            payload += fpga.process(bits[i : i + 1000])
        payload += fpga.finish()
        decoder = FrameDecoder()
        stream = SampleStream()
        stream.ingest(decoder.feed(payload))
        got = stream.samples(0).astype(np.int64)
        assert np.array_equal(got, bare)
        assert decoder.lost_frames == 0
        assert decoder.crc_errors == 0

    def test_path_survives_fragmented_delivery(self):
        bits = random_bits(128 * 50, seed=7)
        fpga = FPGAFilterBank(samples_per_frame=16, flush_words_on_switch=0)
        payload = fpga.process(bits) + fpga.finish()
        decoder = FrameDecoder()
        stream = SampleStream()
        rng = np.random.default_rng(8)
        i = 0
        while i < len(payload):
            step = int(rng.integers(1, 17))
            stream.ingest(decoder.feed(payload[i : i + step]))
            i += step
        assert stream.sample_count(0) == 50
