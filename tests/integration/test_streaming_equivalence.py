"""Streaming invariants across the full digital path.

The second half is the PR's core equivalence property: an
:class:`~repro.core.session.AcquisitionSession` fed any random chunking
of a record produces output bit-identical to the one-shot batch path,
for the pressure, voltage and batched-scan acquisitions, on both
modulator backends (noise, jitter and mismatch all enabled).
"""

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.daq.fpga import FPGAFilterBank
from repro.daq.stream import SampleStream
from repro.daq.usb import FrameDecoder
from repro.dsp.decimator import DecimationFilter


def random_bits(n, seed=0):
    return np.random.default_rng(seed).choice([-1, 1], size=n).astype(np.int64)


def random_splits(n, seed, min_first=2):
    """Random chunk sizes summing to n, first chunk >= ``min_first``.

    The first chunk must hold >= 2 samples so the stream's first jitter
    slope is defined the same way as in the batch path (slope[0] is
    copied from slope[1] at a stream start).
    """
    rng = np.random.default_rng(seed)
    cuts = np.sort(rng.choice(np.arange(min_first, n), size=5, replace=False))
    edges = np.concatenate([[0], cuts, [n]])
    return np.diff(edges)


def make_chain(backend, seed=11):
    return ReadoutChain(rng=np.random.default_rng(seed), backend=backend)


def sine_field(n, n_elements=4):
    """Membrane-pressure field: DC hold-down + pulsatile sines."""
    t = np.arange(n) / 128000.0
    phases = np.linspace(0.0, np.pi, n_elements)
    return 2500.0 + 600.0 * np.sin(
        2 * np.pi * 8.0 * t[:, None] + phases[None, :]
    )


class TestFilterStreaming:
    @pytest.mark.parametrize("chunks", [[8192], [100, 8092], [1, 127, 8064]])
    def test_decimator_chunking_invariant(self, chunks):
        bits = random_bits(8192, seed=5)
        whole = DecimationFilter().process(bits).codes
        filt = DecimationFilter()
        out = []
        start = 0
        for c in chunks:
            out.append(filt.process(bits[start : start + c]).codes)
            start += c
        assert np.array_equal(np.concatenate(out), whole)


class TestFPGAToHost:
    def test_full_digital_path_preserves_codes(self):
        """FPGA filter -> frames -> decoder -> stream reproduces exactly
        the codes the bare filter computes."""
        bits = random_bits(128 * 200, seed=6)
        bare = DecimationFilter().process(bits).codes

        fpga = FPGAFilterBank(samples_per_frame=32, flush_words_on_switch=0)
        payload = b""
        for i in range(0, bits.size, 1000):
            payload += fpga.process(bits[i : i + 1000])
        payload += fpga.finish()
        decoder = FrameDecoder()
        stream = SampleStream()
        stream.ingest(decoder.feed(payload))
        got = stream.samples(0).astype(np.int64)
        assert np.array_equal(got, bare)
        assert decoder.lost_frames == 0
        assert decoder.crc_errors == 0

    def test_path_survives_fragmented_delivery(self):
        bits = random_bits(128 * 50, seed=7)
        fpga = FPGAFilterBank(samples_per_frame=16, flush_words_on_switch=0)
        payload = fpga.process(bits) + fpga.finish()
        decoder = FrameDecoder()
        stream = SampleStream()
        rng = np.random.default_rng(8)
        i = 0
        while i < len(payload):
            step = int(rng.integers(1, 17))
            stream.ingest(decoder.feed(payload[i : i + step]))
            i += step
        assert stream.sample_count(0) == 50


@pytest.mark.parametrize("backend", ["fast", "reference"])
class TestSessionChunkingEquivalence:
    """Chunked sessions == batch path, bit for bit, both backends.

    Noise, clock jitter and DAC mismatch are all left at the paper
    defaults: the per-term RNG streams make every stochastic draw a
    function of the cumulative sample index, not of the chunking.
    """

    N = 128 * 50  # 50 output words per acquisition

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pressure_chunked_matches_batch(self, backend, seed):
        field = sine_field(self.N)
        batch = make_chain(backend).record_pressure(field, element=2)

        session = make_chain(backend).session(element=2)
        start = 0
        for size in random_splits(self.N, seed):
            session.feed_pressure(field[start : start + size])
            start += size
        chunked = session.recording()
        assert np.array_equal(chunked.codes, batch.codes)
        session.telemetry.reconcile(lossless=True)

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_voltage_chunked_matches_batch(self, backend, seed):
        t = np.arange(self.N) / 128000.0
        stimulus = 0.3 * np.sin(2 * np.pi * 15.625 * t)
        batch = make_chain(backend).record_voltage(stimulus)

        session = make_chain(backend).session()
        start = 0
        for size in random_splits(self.N, seed):
            session.feed_voltage(stimulus[start : start + size])
            start += size
        chunked = session.recording()
        assert np.array_equal(chunked.codes, batch.codes)
        session.telemetry.reconcile(lossless=True)

    @pytest.mark.parametrize("seed", [6, 7])
    def test_batched_scan_matches_chunked_sessions(self, backend, seed):
        """The batched modulator fan-out == per-element chunked sessions.

        ``scan_elements(batched=True)`` converts every element's dwell
        segment from the same pre-scan modulator state. Replaying that by
        hand — restore the snapshot, open a session on the element, feed
        its segment in random chunks — must land on identical words.
        """
        dwell_mod = 128 * 16
        n_elements = 4
        field = sine_field(dwell_mod * n_elements)
        batch = make_chain(backend).scan_elements(
            field, dwell_s=dwell_mod / 128000.0, batched=True
        )

        chain = make_chain(backend)
        saved = chain.chip.state_snapshot()
        columns = []
        for k in range(n_elements):
            chain.chip.restore_state(saved)
            session = chain.session(element=k)
            segment = field[k * dwell_mod : (k + 1) * dwell_mod]
            start = 0
            for size in random_splits(dwell_mod, seed + k):
                session.feed_pressure(segment[start : start + size])
                start += size
            columns.append(session.recording().values)
        n = min(c.size for c in columns)
        chunked = np.column_stack([c[:n] for c in columns])
        assert np.array_equal(chunked, batch[:n])
