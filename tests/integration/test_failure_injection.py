"""Failure injection: the chain under abnormal conditions."""

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.daq.stream import SampleStream
from repro.daq.usb import FrameDecoder, FrameEncoder
from repro.errors import ModulatorOverloadError, SimulationError
from repro.params import ModulatorParams, NonidealityParams, SystemParams
from repro.sdm.modulator import SecondOrderSDM


class TestOverloadPropagation:
    def test_gross_overdrive_detected(self):
        """A way-over-full-scale loop input raises on request."""
        sdm = SecondOrderSDM(
            ModulatorParams(), NonidealityParams.ideal(),
            rng=np.random.default_rng(1),
        )
        with pytest.raises(ModulatorOverloadError) as err:
            sdm.simulate(np.full(4000, 2.0), overload_policy="raise")
        assert "overload" in str(err.value)
        assert err.value.state[0] != 0.0

    def test_chain_survives_overdrive_with_clipping(self):
        """Default policy: the chain saturates gracefully, producing
        codes pinned at the rails rather than crashing."""
        params = SystemParams()
        chain = ReadoutChain(params, rng=np.random.default_rng(2))
        v = np.full(128 * 32, 2.0 * params.modulator.vref_v)
        rec = chain.record_voltage(v)
        assert rec.codes.max() == 2047  # pinned at +FS


class TestMembraneTouchDown:
    def test_excessive_pressure_raises(self):
        params = SystemParams()
        chain = ReadoutChain(params, rng=np.random.default_rng(3))
        lo, hi = chain.chip.array.sensor.pressure_range_pa
        field = np.full((128 * 4, 4), hi * 2.0)
        with pytest.raises(SimulationError, match="range"):
            chain.record_pressure(field, element=0)


class TestTransportFaults:
    def _frames(self, n_codes=200, spf=16):
        enc = FrameEncoder(samples_per_frame=spf)
        codes = np.arange(n_codes, dtype=np.int16)
        return enc.push(codes, element=0) + enc.flush()

    def test_burst_corruption_bounded_loss(self):
        """Corrupting a 30-byte burst loses at most two frames' worth of
        samples; everything else decodes."""
        payload = bytearray(self._frames())
        payload[100:130] = b"\x55" * 30
        dec = FrameDecoder()
        frames = dec.feed(bytes(payload))
        recovered = sum(f.samples.size for f in frames)
        assert recovered >= 200 - 2 * 16
        # Sequence accounting notices the gap.
        assert dec.lost_frames + dec.crc_errors >= 1

    def test_stream_with_gaps_still_usable(self):
        payload = self._frames()
        # Drop a frame in the middle (frame length = 7 + 32 + 2 = 41).
        cut = payload[:41 * 3] + payload[41 * 4 :]
        dec = FrameDecoder()
        stream = SampleStream()
        stream.ingest(dec.feed(cut))
        assert dec.lost_frames == 1
        # The stream still assembles the surviving samples.
        assert stream.sample_count(0) == 200 - 16

    def test_lost_samples_surface_in_recording(self):
        """A dropped frame shows up as per-element ``lost_samples`` on the
        ChainRecording, not just as a decoder-level frame count. The loss
        is booked at the link's configured frame size, so the payload
        here is framed at the chain's own ``samples_per_frame``."""
        chain = ReadoutChain(SystemParams(), rng=np.random.default_rng(4))
        spf = chain.fpga.encoder.samples_per_frame
        payload = self._frames(n_codes=5 * spf, spf=spf)
        frame_bytes = 7 + 2 * spf + 2
        cut = payload[: frame_bytes * 3] + payload[frame_bytes * 4 :]
        rec = chain._collect(cut, element=0)
        assert rec.lost_frames == 1
        assert rec.lost_samples == spf

    def test_stream_totals_lost_samples_across_elements(self):
        enc = FrameEncoder(samples_per_frame=8)
        payload = b""
        for element in (0, 1):
            payload += enc.push(np.arange(64, dtype=np.int16), element=element)
        # Drop one 25-byte frame from each element's run (8 frames each).
        cut = payload[: 25 * 2] + payload[25 * 3 : 25 * 10] + payload[25 * 11 :]
        dec = FrameDecoder()
        stream = SampleStream()
        stream.ingest(dec.feed(cut))
        assert stream.lost_samples(0) + stream.lost_samples(1) == 16
        assert stream.total_lost_samples() == 16

    def test_all_zero_garbage_yields_nothing(self):
        dec = FrameDecoder()
        assert dec.feed(b"\x00" * 1000) == []

    def test_random_garbage_never_crashes(self):
        rng = np.random.default_rng(9)
        dec = FrameDecoder()
        for _ in range(20):
            blob = rng.integers(0, 256, 500, dtype=np.uint8).tobytes()
            frames = dec.feed(blob)
            # Any "frame" that survives random bytes must have passed CRC
            # — astronomically unlikely; mostly this returns [].
            assert isinstance(frames, list)


class TestQualityGates:
    def test_off_artery_placement_flagged(self):
        """Placement far from the artery: no pulse reaches the sensor;
        the quality gate must reject rather than produce garbage BP."""
        from repro.calibration.quality import assess_quality

        rng = np.random.default_rng(10)
        flat = 1e-4 * rng.standard_normal(8000)  # converter noise only
        report = assess_quality(flat, 1000.0)
        assert not report.acceptable


class TestPathologicalPayloads:
    def test_sync_word_flood_no_recursion_blowup(self):
        """A megabyte of repeated sync words (every 2 bytes a false frame
        start) must decode to nothing without exhausting the stack."""
        dec = FrameDecoder()
        flood = b"\xa5\x5a" * 200_000
        frames = dec.feed(flood)
        assert frames == []
        assert dec.crc_errors > 0

    def test_recovery_after_flood_is_bounded(self):
        """A false header at the flood's tail can claim up to one
        max-size frame (519 bytes) of look-ahead, so the first good
        frames after garbage may be absorbed into failed CRC checks —
        but on a *continuing* stream the decoder must resynchronize
        within that bound and then decode everything."""
        enc = FrameEncoder(samples_per_frame=8)
        dec = FrameDecoder()
        assert dec.feed(b"\xa5\x5a" * 5000) == []
        decoded = 0
        for _ in range(40):
            chunk = enc.push(np.arange(8, dtype=np.int16), element=1)
            decoded += len(dec.feed(chunk))
        # 40 frames x 25 bytes = 1000 bytes sent; at most ~2 frames'
        # worth may be consumed by the resync window.
        assert decoded >= 38
        # And from here on, decoding is loss-free.
        final = dec.feed(enc.push(np.arange(8, dtype=np.int16), element=1))
        assert len(final) == 1
