"""Every shipped example must run to completion.

Executed as subprocesses (their own ``__main__``), so import-time and
run-time breakage in any example fails CI. Marked slow: together they
cost ~30 s of simulation.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} printed nothing"


def test_expected_examples_present():
    assert set(EXAMPLES) == {
        "quickstart.py",
        "adc_characterization.py",
        "vessel_localization.py",
        "method_comparison.py",
        "field_conditions.py",
        "architecture_explorer.py",
        "cardiac_surgery.py",
    }
