"""MembraneSensor: interpolant fidelity, ranges, sensitivity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mems.membrane import MembraneSensor
from repro.params import MembraneParams, PASCAL_PER_MMHG


class TestInterpolantFidelity:
    def test_matches_exact_in_operating_range(self, sensor):
        p = np.linspace(*sensor.pressure_range_pa, 101)
        fast = sensor.capacitance_f(p)
        exact = sensor.capacitance_exact_f(p)
        # Interpolant error far below 1 aF (signal is ~100s of aF).
        assert np.max(np.abs(fast - exact)) < 1e-20

    def test_rest_capacitance_consistent(self, sensor):
        assert sensor.capacitance_f(0.0)[0] == pytest.approx(
            sensor.rest_capacitance_f, rel=1e-9
        )


class TestTransferShape:
    def test_monotone_increasing(self, sensor):
        p = np.linspace(*sensor.pressure_range_pa, 201)
        c = sensor.capacitance_f(p)
        assert np.all(np.diff(c) > 0)

    def test_sensitivity_positive(self, sensor):
        assert sensor.pressure_sensitivity_f_per_pa(0.0) > 0

    def test_linearity_error_small_in_physiologic_band(self, sensor):
        p = np.linspace(-40, 40, 21) * PASCAL_PER_MMHG
        err = sensor.linearity_error(p)
        assert np.max(np.abs(err)) < 1e-4  # < 0.01 % of C0

    def test_deflection_sign_convention(self, sensor):
        """Positive pressure -> positive deflection (toward poly)."""
        assert sensor.deflection_m(1000.0)[0] > 0
        assert sensor.deflection_m(-1000.0)[0] < 0


class TestRanges:
    def test_out_of_range_raises(self, sensor):
        lo, hi = sensor.pressure_range_pa
        with pytest.raises(SimulationError, match="outside"):
            sensor.capacitance_f(hi * 1.01)
        with pytest.raises(SimulationError, match="outside"):
            sensor.capacitance_f(lo * 1.01)

    def test_full_scale_exceeds_operating_range(self, sensor):
        assert sensor.full_scale_pressure_pa > sensor.pressure_range_pa[1]

    def test_exact_path_covers_beyond_operating_range(self, sensor):
        p = 2.0 * sensor.pressure_range_pa[1]
        c = sensor.capacitance_exact_f(p)
        assert np.isfinite(c[0])


class TestConstruction:
    def test_laminate_thickness_mismatch_rejected(self):
        from repro.mems.laminate import Laminate
        from repro.mems.materials import Layer, SILICON_OXIDE

        thin = Laminate([Layer(SILICON_OXIDE, 1e-6)])
        with pytest.raises(ConfigurationError, match="disagrees"):
            MembraneSensor(laminate=thin)

    def test_rejects_bad_operating_range(self):
        with pytest.raises(ConfigurationError):
            MembraneSensor(operating_range_pa=0.0)

    def test_custom_geometry(self):
        params = MembraneParams(side_m=200e-6, pitch_m=250e-6)
        big = MembraneSensor(params)
        small = MembraneSensor()
        # Bigger membrane: more compliant and more electrode area.
        assert big.rest_capacitance_f > small.rest_capacitance_f
        assert (
            big.pressure_sensitivity_f_per_pa()
            > small.pressure_sensitivity_f_per_pa()
        )

    def test_describe_contains_key_figures(self, sensor):
        text = sensor.describe()
        assert "sensitivity" in text
        assert "rest capacitance" in text


class TestMismatchEffects:
    def test_smaller_gap_higher_sensitivity(self):
        near = MembraneSensor(MembraneParams(gap_m=0.4e-6))
        far = MembraneSensor(MembraneParams(gap_m=0.8e-6))
        assert (
            near.pressure_sensitivity_f_per_pa()
            > far.pressure_sensitivity_f_per_pa()
        )

    def test_residual_stress_reduces_sensitivity(self):
        slack = MembraneSensor(MembraneParams(residual_stress_pa=0.0))
        tense = MembraneSensor(MembraneParams(residual_stress_pa=100e6))
        assert (
            tense.pressure_sensitivity_f_per_pa()
            < slack.pressure_sensitivity_f_per_pa()
        )
