"""Clamped square plate mechanics: limits, monotonicity, inverse."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mems.laminate import Laminate
from repro.mems.materials import Layer, SILICON_OXIDE, paper_membrane_stack
from repro.mems.plate import (
    ClampedSquarePlate,
    MODE_I_BENDING,
    MODE_I_TENSION,
    MODE_I_VOLUME,
    mode_shape,
)


@pytest.fixture(scope="module")
def plate() -> ClampedSquarePlate:
    lam = Laminate(paper_membrane_stack())
    return ClampedSquarePlate(100e-6, lam, residual_force_override_n_per_m=90.0)


class TestModeShape:
    def test_clamped_boundary(self):
        assert mode_shape(np.array([-0.5, 0.5])) == pytest.approx([0.0, 0.0])

    def test_unity_at_center(self):
        assert mode_shape(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_zero_outside(self):
        assert mode_shape(np.array([0.7, -1.0])) == pytest.approx([0.0, 0.0])

    def test_symmetry(self):
        xi = np.linspace(0, 0.5, 20)
        assert mode_shape(xi) == pytest.approx(mode_shape(-xi))

    def test_mode_integrals_closed_form(self):
        """The closed-form constants must match numerical quadrature."""
        xi = np.linspace(-0.5, 0.5, 20001)
        phi = np.cos(np.pi * xi) ** 2
        dphi = np.gradient(phi, xi)
        d2phi = np.gradient(dphi, xi)
        i_phi2 = np.trapezoid(phi**2, xi)
        i_dphi2 = np.trapezoid(dphi**2, xi)
        i_d2phi2 = np.trapezoid(d2phi**2, xi)
        i_phid2 = np.trapezoid(phi * d2phi, xi)
        i_b = 2 * i_d2phi2 * i_phi2 + 2 * i_phid2**2
        i_t = 2 * i_dphi2 * i_phi2
        assert i_b == pytest.approx(MODE_I_BENDING, rel=1e-3)
        assert i_t == pytest.approx(MODE_I_TENSION, rel=1e-4)
        assert np.trapezoid(phi, xi) ** 2 == pytest.approx(
            MODE_I_VOLUME, rel=1e-6
        )


class TestPlateLimit:
    def test_textbook_plate_coefficient(self):
        """Stress-free pure-plate limit: w0 = alpha * P a^4 / D with
        alpha within a few % of the exact 0.00126."""
        lam = Laminate([Layer(SILICON_OXIDE, 2e-6)])
        a = 100e-6
        p = 100.0  # small enough for the linear regime
        plate = ClampedSquarePlate(a, lam, residual_force_override_n_per_m=0.0)
        w0 = float(plate.center_deflection_m(p)[0])
        alpha = w0 * lam.flexural_rigidity_nm / (p * a**4)
        assert alpha == pytest.approx(0.00126, rel=0.03)

    def test_tension_limit(self):
        """Tension-dominated limit: w0 ~ 0.0675 P a^2 / N0 (single-mode
        Galerkin value; exact series gives 0.0737)."""
        lam = Laminate([Layer(SILICON_OXIDE, 0.1e-6)])
        a = 1000e-6  # large thin membrane: bending negligible
        n0 = 100.0
        plate = ClampedSquarePlate(a, lam, residual_force_override_n_per_m=n0)
        p = 1.0
        w0 = float(plate.center_deflection_m(p)[0])
        coeff = w0 * n0 / (p * a**2)
        assert coeff == pytest.approx(
            MODE_I_VOLUME / MODE_I_TENSION, rel=0.02
        )


class TestLoadDeflection:
    def test_monotone_in_pressure(self, plate):
        p = np.linspace(-50e3, 50e3, 101)
        w = plate.center_deflection_m(p)
        assert np.all(np.diff(w) > 0)

    def test_odd_symmetry(self, plate):
        p = np.linspace(100.0, 50e3, 20)
        w_pos = plate.center_deflection_m(p)
        w_neg = plate.center_deflection_m(-p)
        assert w_neg == pytest.approx(-w_pos)

    def test_zero_pressure_zero_deflection(self, plate):
        assert float(plate.center_deflection_m(0.0)[0]) == pytest.approx(0.0)

    def test_inverse_round_trip(self, plate):
        p = np.linspace(-40e3, 40e3, 17)
        w = plate.center_deflection_m(p)
        p_back = plate.pressure_for_deflection_pa(w)
        assert p_back == pytest.approx(p, rel=1e-9, abs=1e-9)

    def test_stiffening_reduces_large_deflection(self, plate):
        """The cubic term makes deflection sub-linear in pressure."""
        w_small = float(plate.center_deflection_m(1e3)[0])
        w_large = float(plate.center_deflection_m(1e6)[0])
        assert w_large < 1000.0 * w_small

    def test_nonlinearity_fraction_grows(self, plate):
        sol_small = plate.solve(1e3)
        sol_large = plate.solve(1e6)
        assert sol_large.nonlinearity_fraction[0] > (
            sol_small.nonlinearity_fraction[0]
        )

    def test_linear_compliance_matches_small_signal(self, plate):
        c = plate.linear_compliance_m_per_pa
        w = float(plate.center_deflection_m(10.0)[0])
        assert w / 10.0 == pytest.approx(c, rel=1e-4)

    def test_solution_unpacking(self, plate):
        w0, nl = plate.solve(1e3)
        assert w0.shape == (1,)
        assert nl.shape == (1,)


class TestProfile:
    def test_profile_peaks_at_center(self, plate):
        x = np.linspace(-50e-6, 50e-6, 41)
        prof = plate.deflection_profile_m(1e3, x, np.zeros_like(x))
        assert np.argmax(prof) == 20

    def test_profile_center_equals_w0(self, plate):
        w0 = float(plate.center_deflection_m(1e3)[0])
        center = float(plate.deflection_profile_m(1e3, 0.0, 0.0))
        assert center == pytest.approx(w0)

    def test_profile_zero_at_edges(self, plate):
        edge = float(plate.deflection_profile_m(1e3, 50e-6, 0.0))
        assert edge == pytest.approx(0.0, abs=1e-18)


class TestStressEffects:
    def test_tension_stiffens(self):
        lam = Laminate(paper_membrane_stack())
        slack = ClampedSquarePlate(100e-6, lam, residual_force_override_n_per_m=0.0)
        tense = ClampedSquarePlate(100e-6, lam, residual_force_override_n_per_m=300.0)
        assert (
            tense.linear_compliance_m_per_pa < slack.linear_compliance_m_per_pa
        )

    def test_buckling_detected(self):
        lam = Laminate(paper_membrane_stack())
        with pytest.raises(ConfigurationError, match="buckled"):
            ClampedSquarePlate(
                100e-6, lam, residual_force_override_n_per_m=-1e5
            )

    def test_resonance_well_above_band(self, plate):
        """Quasi-static assumption: resonance >> 500 Hz signal band."""
        assert plate.resonance_frequency_hz() > 100e3

    def test_tension_raises_resonance(self):
        lam = Laminate(paper_membrane_stack())
        slack = ClampedSquarePlate(100e-6, lam, residual_force_override_n_per_m=0.0)
        tense = ClampedSquarePlate(100e-6, lam, residual_force_override_n_per_m=300.0)
        assert tense.resonance_frequency_hz() > slack.resonance_frequency_hz()


class TestValidation:
    def test_rejects_nonpositive_side(self):
        lam = Laminate(paper_membrane_stack())
        with pytest.raises(ConfigurationError):
            ClampedSquarePlate(0.0, lam)
