"""Backpressure actuation (Fig. 8 assembly)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mems.backpressure import BackpressureActuator


@pytest.fixture(scope="module")
def actuator(sensor):
    return BackpressureActuator(sensor)


class TestProtrusion:
    def test_protrusion_positive(self, actuator):
        assert actuator.protrusion_m(5000.0)[0] > 0

    def test_protrusion_monotone(self, actuator):
        p = np.linspace(0.0, 20e3, 11)
        prot = actuator.protrusion_m(p)
        assert np.all(np.diff(prot) > 0)

    def test_zero_backpressure_zero_protrusion(self, actuator):
        assert actuator.protrusion_m(0.0)[0] == pytest.approx(0.0)

    def test_negative_backpressure_rejected(self, actuator):
        with pytest.raises(ConfigurationError):
            actuator.protrusion_m(-10.0)

    def test_required_backpressure_round_trip(self, actuator):
        target = 50e-9
        bp = actuator.required_backpressure_pa(target)
        assert actuator.protrusion_m(bp)[0] == pytest.approx(target, rel=1e-9)

    def test_required_backpressure_rejects_negative(self, actuator):
        with pytest.raises(ConfigurationError):
            actuator.required_backpressure_pa(-1e-9)


class TestPneumatics:
    def test_settles_to_command(self, actuator):
        p = actuator.settled_pressure_pa(5000.0, 10 * actuator.time_constant_s)
        assert float(p) == pytest.approx(5000.0, rel=1e-3)

    def test_starts_at_initial(self, actuator):
        p = actuator.settled_pressure_pa(5000.0, 0.0, initial_pa=1000.0)
        assert float(p) == pytest.approx(1000.0)

    def test_one_tau_63_percent(self, actuator):
        tau = actuator.time_constant_s
        p = actuator.settled_pressure_pa(1000.0, tau)
        assert float(p) == pytest.approx(1000.0 * (1 - np.exp(-1)), rel=1e-9)

    def test_rejects_nonpositive_time_constant(self, sensor):
        with pytest.raises(ConfigurationError):
            BackpressureActuator(sensor, time_constant_s=0.0)
