"""Composite-plate lamination mechanics."""


import pytest

from repro.errors import ConfigurationError
from repro.mems.laminate import Laminate
from repro.mems.materials import (
    ALUMINUM,
    Layer,
    Material,
    SILICON_NITRIDE,
    SILICON_OXIDE,
    paper_membrane_stack,
)


@pytest.fixture(scope="module")
def paper_laminate() -> Laminate:
    return Laminate(paper_membrane_stack())


def _uniform(material: Material, thickness: float) -> Laminate:
    return Laminate([Layer(material, thickness)])


class TestGeometry:
    def test_thickness_sums_layers(self, paper_laminate):
        assert paper_laminate.thickness_m == pytest.approx(3e-6)

    def test_layer_bounds_are_contiguous(self, paper_laminate):
        bounds = paper_laminate.layer_bounds_m()
        for (_, top), (bottom, _) in zip(bounds, bounds[1:]):
            assert top == pytest.approx(bottom)

    def test_empty_laminate_rejected(self):
        with pytest.raises(ConfigurationError):
            Laminate([])


class TestSingleLayerLimits:
    """A one-layer laminate must match textbook plate formulas."""

    def test_neutral_axis_at_midplane(self):
        lam = _uniform(SILICON_OXIDE, 2e-6)
        assert lam.neutral_axis_m == pytest.approx(1e-6, rel=1e-9)

    def test_flexural_rigidity_textbook(self):
        h = 2e-6
        lam = _uniform(SILICON_OXIDE, h)
        expected = SILICON_OXIDE.plate_modulus_pa * h**3 / 12.0
        assert lam.flexural_rigidity_nm == pytest.approx(expected, rel=1e-9)

    def test_membrane_force_is_stress_times_thickness(self):
        h = 2e-6
        lam = _uniform(SILICON_NITRIDE, h)
        assert lam.membrane_force_n_per_m == pytest.approx(
            SILICON_NITRIDE.residual_stress_pa * h
        )

    def test_areal_mass(self):
        lam = _uniform(ALUMINUM, 1e-6)
        assert lam.areal_mass_kg_m2 == pytest.approx(2700e-6)


class TestComposite:
    def test_neutral_axis_pulled_toward_stiff_layer(self):
        # Nitride on top is much stiffer than oxide: neutral axis above
        # the geometric midplane.
        lam = Laminate(
            [Layer(SILICON_OXIDE, 1.5e-6), Layer(SILICON_NITRIDE, 1.5e-6)]
        )
        assert lam.neutral_axis_m > lam.thickness_m / 2.0

    def test_rigidity_exceeds_softest_uniform(self, paper_laminate):
        soft = _uniform(SILICON_OXIDE, paper_laminate.thickness_m)
        assert paper_laminate.flexural_rigidity_nm > soft.flexural_rigidity_nm

    def test_rigidity_below_stiffest_uniform(self, paper_laminate):
        stiff = _uniform(SILICON_NITRIDE, paper_laminate.thickness_m)
        assert paper_laminate.flexural_rigidity_nm < stiff.flexural_rigidity_nm

    def test_split_layer_invariance(self):
        """Splitting one physical layer into two identical halves must not
        change any derived stiffness quantity."""
        whole = _uniform(SILICON_OXIDE, 2e-6)
        split = Laminate(
            [Layer(SILICON_OXIDE, 1e-6), Layer(SILICON_OXIDE, 1e-6)]
        )
        assert split.neutral_axis_m == pytest.approx(whole.neutral_axis_m)
        assert split.flexural_rigidity_nm == pytest.approx(
            whole.flexural_rigidity_nm
        )
        assert split.membrane_force_n_per_m == pytest.approx(
            whole.membrane_force_n_per_m
        )

    def test_stacking_order_affects_rigidity(self):
        """An asymmetric stack's D depends on layer order relative to the
        neutral axis... but flipping the whole stack must NOT change D
        (mirror symmetry)."""
        a = Laminate(
            [Layer(SILICON_OXIDE, 2e-6), Layer(SILICON_NITRIDE, 0.5e-6)]
        )
        b = Laminate(
            [Layer(SILICON_NITRIDE, 0.5e-6), Layer(SILICON_OXIDE, 2e-6)]
        )
        assert a.flexural_rigidity_nm == pytest.approx(
            b.flexural_rigidity_nm, rel=1e-9
        )

    def test_effective_moduli_are_thickness_weighted(self, paper_laminate):
        e = paper_laminate.effective_youngs_modulus_pa
        moduli = [l.material.youngs_modulus_pa for l in paper_laminate.layers]
        assert min(moduli) < e < max(moduli)


class TestStressOverride:
    def test_with_residual_stress_sets_uniform_stress(self, paper_laminate):
        stressed = paper_laminate.with_residual_stress(50e6)
        assert stressed.mean_residual_stress_pa == pytest.approx(50e6)

    def test_with_residual_stress_preserves_rigidity(self, paper_laminate):
        stressed = paper_laminate.with_residual_stress(50e6)
        assert stressed.flexural_rigidity_nm == pytest.approx(
            paper_laminate.flexural_rigidity_nm
        )

    def test_describe_mentions_layers(self, paper_laminate):
        text = paper_laminate.describe()
        assert "neutral axis" in text
        assert "N0" in text
        assert f"{len(paper_laminate.layers)} layers" in text


class TestPaperStackProperties:
    def test_paper_stack_is_net_tensile(self, paper_laminate):
        """The oxide/nitride balance must come out mildly tensile,
        otherwise released membranes would buckle."""
        assert paper_laminate.membrane_force_n_per_m > 0

    def test_rigidity_order_of_magnitude(self, paper_laminate):
        # D ~ E h^3 / 12 with E ~ 100 GPa, h = 3 um -> ~2e-7 N m.
        d = paper_laminate.flexural_rigidity_nm
        assert 1e-8 < d < 1e-6

    def test_areal_mass_order(self, paper_laminate):
        # ~2500 kg/m^3 * 3 um
        assert paper_laminate.areal_mass_kg_m2 == pytest.approx(
            7.5e-3, rel=0.4
        )
