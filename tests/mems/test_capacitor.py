"""Deflected-plate capacitance: parallel-plate limits, touch-down."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mems.capacitor import DeflectedPlateCapacitor, VACUUM_PERMITTIVITY


@pytest.fixture(scope="module")
def cap() -> DeflectedPlateCapacitor:
    return DeflectedPlateCapacitor(
        side_m=100e-6, gap_m=0.6e-6, electrode_coverage=0.8
    )


class TestRestCapacitance:
    def test_flat_plate_formula(self):
        plain = DeflectedPlateCapacitor(
            side_m=100e-6,
            gap_m=0.6e-6,
            electrode_coverage=1.0,
            fringe_factor=1.0,
            parasitic_f=0.0,
        )
        expected = VACUUM_PERMITTIVITY * (100e-6) ** 2 / 0.6e-6
        assert plain.rest_capacitance_f == pytest.approx(expected, rel=1e-12)

    def test_quadrature_matches_rest_at_zero(self, cap):
        c0 = cap.capacitance_f(0.0)[0]
        assert c0 == pytest.approx(cap.rest_capacitance_f, rel=1e-12)

    def test_coverage_scales_area(self):
        full = DeflectedPlateCapacitor(100e-6, 0.6e-6, electrode_coverage=1.0,
                                       fringe_factor=1.0, parasitic_f=0.0)
        half = DeflectedPlateCapacitor(100e-6, 0.6e-6, electrode_coverage=0.5,
                                       fringe_factor=1.0, parasitic_f=0.0)
        assert half.rest_capacitance_f == pytest.approx(
            full.rest_capacitance_f / 2.0
        )

    def test_electrode_side(self, cap):
        assert cap.electrode_side_m == pytest.approx(
            100e-6 * np.sqrt(0.8)
        )


class TestDeflectionResponse:
    def test_positive_deflection_increases_c(self, cap):
        w = np.array([0.0, 50e-9, 100e-9, 200e-9])
        c = cap.capacitance_f(w)
        assert np.all(np.diff(c) > 0)

    def test_negative_deflection_decreases_c(self, cap):
        c = cap.capacitance_f(np.array([0.0, -100e-9]))
        assert c[1] < c[0]

    def test_asymmetry_toward_gap(self, cap):
        """1/(g-w) curvature: +w changes C more than -w decreases it."""
        c0 = cap.capacitance_f(0.0)[0]
        c_plus = cap.capacitance_f(200e-9)[0]
        c_minus = cap.capacitance_f(-200e-9)[0]
        assert (c_plus - c0) > (c0 - c_minus)

    def test_small_signal_matches_exact(self, cap):
        w = np.linspace(-10e-9, 10e-9, 9)
        exact = cap.capacitance_f(w)
        linear = cap.small_signal_capacitance_f(w)
        # Within 0.01 % of rest capacitance over +/-10 nm.
        assert np.max(np.abs(exact - linear)) < 1e-4 * cap.rest_capacitance_f

    def test_sensitivity_positive(self, cap):
        assert cap.sensitivity_f_per_m(0.0) > 0

    def test_sensitivity_grows_with_deflection(self, cap):
        assert cap.sensitivity_f_per_m(300e-9) > cap.sensitivity_f_per_m(0.0)


class TestTouchDown:
    def test_raises_beyond_guard(self, cap):
        with pytest.raises(SimulationError, match="touch-down"):
            cap.capacitance_f(0.96 * cap.gap_m)

    def test_guard_is_95_percent(self, cap):
        assert cap.max_deflection_m == pytest.approx(0.95 * cap.gap_m)

    def test_just_inside_guard_ok(self, cap):
        c = cap.capacitance_f(0.94 * cap.gap_m)
        assert np.isfinite(c[0])


class TestValidation:
    def test_rejects_bad_coverage(self):
        with pytest.raises(ConfigurationError):
            DeflectedPlateCapacitor(100e-6, 0.6e-6, electrode_coverage=0.0)
        with pytest.raises(ConfigurationError):
            DeflectedPlateCapacitor(100e-6, 0.6e-6, electrode_coverage=1.5)

    def test_rejects_fringe_below_one(self):
        with pytest.raises(ConfigurationError):
            DeflectedPlateCapacitor(100e-6, 0.6e-6, fringe_factor=0.9)

    def test_rejects_negative_parasitic(self):
        with pytest.raises(ConfigurationError):
            DeflectedPlateCapacitor(100e-6, 0.6e-6, parasitic_f=-1e-15)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ConfigurationError):
            DeflectedPlateCapacitor(100e-6, 0.6e-6, grid_points=3)

    def test_grid_convergence(self):
        """Doubling quadrature resolution changes C by < 0.01 %."""
        coarse = DeflectedPlateCapacitor(100e-6, 0.6e-6, grid_points=31)
        fine = DeflectedPlateCapacitor(100e-6, 0.6e-6, grid_points=121)
        w = 300e-9
        assert coarse.capacitance_f(w)[0] == pytest.approx(
            fine.capacitance_f(w)[0], rel=1e-4
        )
