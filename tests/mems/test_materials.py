"""Material catalog and Layer invariants."""

import pytest

from repro.errors import ConfigurationError
from repro.mems.materials import (
    ALUMINUM,
    Layer,
    Material,
    POLYSILICON,
    SILICON,
    SILICON_NITRIDE,
    SILICON_OXIDE,
    paper_membrane_stack,
)


class TestMaterial:
    def test_biaxial_modulus_exceeds_youngs(self):
        for mat in (SILICON_OXIDE, SILICON_NITRIDE, ALUMINUM, POLYSILICON):
            assert mat.biaxial_modulus_pa > mat.youngs_modulus_pa

    def test_plate_modulus_exceeds_youngs(self):
        for mat in (SILICON_OXIDE, SILICON_NITRIDE, ALUMINUM):
            assert mat.plate_modulus_pa > mat.youngs_modulus_pa

    def test_plate_modulus_below_biaxial(self):
        # E/(1-nu^2) < E/(1-nu) for nu in (0, 0.5)
        for mat in (SILICON_OXIDE, SILICON_NITRIDE, ALUMINUM):
            assert mat.plate_modulus_pa < mat.biaxial_modulus_pa

    def test_nitride_stiffer_than_oxide(self):
        assert (
            SILICON_NITRIDE.youngs_modulus_pa > SILICON_OXIDE.youngs_modulus_pa
        )

    def test_nitride_tensile_oxide_compressive(self):
        assert SILICON_NITRIDE.residual_stress_pa > 0
        assert SILICON_OXIDE.residual_stress_pa < 0

    def test_rejects_nonpositive_modulus(self):
        with pytest.raises(ConfigurationError):
            Material("bad", youngs_modulus_pa=0.0, poisson_ratio=0.3,
                     density_kg_m3=1000.0)

    def test_rejects_poisson_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Material("bad", youngs_modulus_pa=1e9, poisson_ratio=0.5,
                     density_kg_m3=1000.0)
        with pytest.raises(ConfigurationError):
            Material("bad", youngs_modulus_pa=1e9, poisson_ratio=-0.1,
                     density_kg_m3=1000.0)

    def test_rejects_low_permittivity(self):
        with pytest.raises(ConfigurationError):
            Material("bad", youngs_modulus_pa=1e9, poisson_ratio=0.3,
                     density_kg_m3=1000.0, relative_permittivity=0.5)

    def test_silicon_density(self):
        assert SILICON.density_kg_m3 == pytest.approx(2330.0)


class TestLayer:
    def test_areal_mass(self):
        layer = Layer(ALUMINUM, 1e-6)
        assert layer.areal_mass_kg_m2 == pytest.approx(2700.0 * 1e-6)

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ConfigurationError):
            Layer(ALUMINUM, 0.0)
        with pytest.raises(ConfigurationError):
            Layer(ALUMINUM, -1e-6)


class TestPaperStack:
    def test_total_thickness_is_3um(self):
        total = sum(l.thickness_m for l in paper_membrane_stack())
        assert total == pytest.approx(3e-6, rel=1e-9)

    def test_contains_oxide_nitride_aluminum(self):
        names = " ".join(l.material.name for l in paper_membrane_stack())
        assert "SiO2" in names
        assert "Si3N4" in names
        assert "Al" in names

    def test_metal_is_not_outermost(self):
        # Passivation nitride protects the metallization (Fig. 2).
        stack = paper_membrane_stack()
        assert "Si3N4" in stack[-1].material.name
