"""Thermal drift of the membrane transducer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mems.thermal import (
    ThermalMembraneModel,
    ThermalState,
    drift_induced_bp_error_mmhg,
)


@pytest.fixture(scope="module")
def model() -> ThermalMembraneModel:
    return ThermalMembraneModel()


class TestWarmup:
    def test_starts_ambient_ends_skin(self):
        state = ThermalState(ambient_c=23.0, skin_c=33.0, warmup_tau_s=90.0)
        t = np.array([0.0, 1e4])
        temps = state.temperature_c(t)
        assert temps[0] == pytest.approx(23.0)
        assert temps[1] == pytest.approx(33.0, abs=1e-3)

    def test_one_tau(self):
        state = ThermalState()
        temp = state.temperature_c(np.array([90.0]))[0]
        expected = 33.0 + (23.0 - 33.0) * np.exp(-1.0)
        assert temp == pytest.approx(expected)


class TestDrift:
    def test_zero_at_reference(self, model):
        assert model.sensitivity_drift_fraction(23.0) == pytest.approx(0.0)

    def test_warming_raises_sensitivity(self, model):
        """Tensile stress relaxes as the die warms (negative TC), so the
        membrane softens and sensitivity increases."""
        assert model.sensitivity_drift_fraction(33.0) > 0.0

    def test_drift_small_but_nonzero(self, model):
        drift = model.sensitivity_drift_fraction(33.0)
        assert 1e-4 < drift < 0.05

    def test_monotone_with_temperature(self, model):
        drifts = [
            model.sensitivity_drift_fraction(t) for t in (25.0, 29.0, 33.0)
        ]
        assert drifts == sorted(drifts)

    def test_offset_drift_sign(self, model):
        # Softer membrane at rest: rest capacitance barely changes (no
        # load), so the offset drift is tiny compared to C0.
        offset = model.offset_drift_f(33.0)
        assert abs(offset) < 1e-3 * model.reference.rest_capacitance_f

    def test_cache_reuses_sensors(self, model):
        a = model.sensor_at(30.0)
        b = model.sensor_at(30.0)
        assert a is b

    def test_trajectory(self, model):
        state = ThermalState()
        drift = model.gain_drift_over_warmup(
            state, np.array([0.0, 90.0, 1e4])
        )
        assert drift[0] == pytest.approx(0.0, abs=1e-6)
        assert np.all(np.diff(drift) > 0)


class TestBPError:
    def test_error_scales_with_drift(self):
        assert drift_induced_bp_error_mmhg(0.01, 40.0) == pytest.approx(0.4)
        assert drift_induced_bp_error_mmhg(-0.01, 40.0) == pytest.approx(-0.4)

    def test_rejects_bad_pp(self):
        with pytest.raises(ConfigurationError):
            drift_induced_bp_error_mmhg(0.01, 0.0)
