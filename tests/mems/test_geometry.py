"""Array geometry and KOH etch opening."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mems.geometry import ArrayGeometry, KOH_SIDEWALL_ANGLE_DEG, koh_opening_side
from repro.params import ArrayParams


@pytest.fixture(scope="module")
def geometry() -> ArrayGeometry:
    return ArrayGeometry(ArrayParams())


class TestKOH:
    def test_opening_larger_than_membrane(self):
        assert koh_opening_side(100e-6) > 100e-6

    def test_undercut_formula(self):
        t = 525e-6
        expected = 100e-6 + 2 * t / math.tan(
            math.radians(KOH_SIDEWALL_ANGLE_DEG)
        )
        assert koh_opening_side(100e-6, t) == pytest.approx(expected)

    def test_thinner_wafer_smaller_opening(self):
        assert koh_opening_side(100e-6, 300e-6) < koh_opening_side(
            100e-6, 525e-6
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            koh_opening_side(0.0)
        with pytest.raises(ConfigurationError):
            koh_opening_side(100e-6, -1.0)


class TestElementLayout:
    def test_2x2_centers(self, geometry):
        centers = geometry.element_centers_m()
        assert centers.shape == (4, 2)
        pitch = geometry.pitch_m
        # Corners of a pitch-sized square centered on the origin.
        expected = np.array(
            [
                [-pitch / 2, -pitch / 2],
                [pitch / 2, -pitch / 2],
                [-pitch / 2, pitch / 2],
                [pitch / 2, pitch / 2],
            ]
        )
        assert centers == pytest.approx(expected)

    def test_centroid_at_origin(self, geometry):
        centers = geometry.element_centers_m()
        assert centers.mean(axis=0) == pytest.approx([0.0, 0.0], abs=1e-18)

    def test_index_round_trip(self, geometry):
        for idx in range(4):
            row, col = geometry.element_rowcol(idx)
            assert geometry.element_index(row, col) == idx

    def test_index_bounds(self, geometry):
        with pytest.raises(ConfigurationError):
            geometry.element_index(2, 0)
        with pytest.raises(ConfigurationError):
            geometry.element_rowcol(4)

    def test_span(self, geometry):
        side = geometry.params.membrane.side_m
        pitch = geometry.pitch_m
        assert geometry.span_m == pytest.approx((pitch + side, pitch + side))

    def test_paper_array_fits_paper_die(self, geometry):
        assert geometry.footprint_fits_die(2.6e-3, 1.9e-3)

    def test_huge_array_does_not_fit(self):
        big = ArrayGeometry(ArrayParams(rows=32, cols=32))
        assert not big.footprint_fits_die(2.6e-3, 1.9e-3)

    def test_asymmetric_array(self):
        geom = ArrayGeometry(ArrayParams(rows=1, cols=4))
        centers = geom.element_centers_m()
        assert centers.shape == (4, 2)
        assert np.all(centers[:, 1] == 0.0)
        assert np.all(np.diff(centers[:, 0]) > 0)
