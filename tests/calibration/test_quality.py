"""Signal-quality assessment."""

import numpy as np
import pytest

from repro.calibration.quality import assess_quality, detrended_pulse_band_power
from repro.errors import ConfigurationError
from repro.physiology.patient import VirtualPatient


@pytest.fixture(scope="module")
def clean():
    patient = VirtualPatient(rng=np.random.default_rng(23))
    return patient.record(duration_s=12.0, sample_rate_hz=1000.0).pressure_mmhg


class TestQuality:
    def test_clean_signal_acceptable(self, clean):
        report = assess_quality(clean, 1000.0)
        assert report.acceptable
        assert report.snr_db > 20.0
        assert report.n_beats >= 10

    def test_noisy_signal_lower_snr(self, clean, rng):
        noisy = clean + 5.0 * rng.standard_normal(clean.size)
        clean_report = assess_quality(clean, 1000.0)
        noisy_report = assess_quality(noisy, 1000.0)
        assert noisy_report.snr_db < clean_report.snr_db

    def test_flatline_not_acceptable(self):
        report = assess_quality(np.zeros(4000), 1000.0)
        assert not report.acceptable
        assert report.n_beats == 0

    def test_regularity_high_for_clean(self, clean):
        report = assess_quality(clean, 1000.0)
        assert report.beat_regularity > 0.8

    def test_describe(self, clean):
        text = assess_quality(clean, 1000.0).describe()
        assert "SNR" in text
        assert "OK" in text or "POOR" in text

    def test_rejects_short(self):
        with pytest.raises(ConfigurationError):
            assess_quality(np.zeros(10), 1000.0)


class TestBandPower:
    def test_pulse_band_power_detects_signal(self, clean):
        assert detrended_pulse_band_power(clean, 1000.0) > 10.0

    def test_dc_has_no_band_power(self):
        assert detrended_pulse_band_power(
            np.full(4000, 100.0), 1000.0
        ) == pytest.approx(0.0, abs=1e-9)

    def test_scales_quadratically(self, clean):
        p1 = detrended_pulse_band_power(clean, 1000.0)
        p2 = detrended_pulse_band_power(2.0 * clean, 1000.0)
        assert p2 == pytest.approx(4.0 * p1, rel=1e-6)

    def test_rejects_short(self):
        with pytest.raises(ConfigurationError):
            detrended_pulse_band_power(np.zeros(10), 1000.0)
