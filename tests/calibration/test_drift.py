"""Calibration drift tracking and recalibration policy."""

import pytest

from repro.calibration.drift import (
    DriftEstimate,
    DriftMonitor,
    RecalibrationPolicy,
)
from repro.calibration.twopoint import TwoPointCalibration
from repro.errors import CalibrationError, ConfigurationError


class _Anchor:
    def __init__(self, sys_raw, dia_raw):
        self.mean_systolic_raw = sys_raw
        self.mean_diastolic_raw = dia_raw


@pytest.fixture()
def calibration() -> TwoPointCalibration:
    return TwoPointCalibration.from_features(_Anchor(0.05, 0.01), 120.0, 80.0)


class TestDriftMonitor:
    def test_no_drift(self, calibration):
        monitor = DriftMonitor(calibration)
        monitor.update(10.0, 0.05, 0.01)
        est = monitor.estimate()
        assert est.gain_drift_fraction == pytest.approx(0.0, abs=1e-12)
        assert est.estimated_bp_error_mmhg == pytest.approx(0.0, abs=1e-9)
        assert not est.significant

    def test_gain_drift_detected(self, calibration):
        monitor = DriftMonitor(calibration)
        # Pulse amplitude grew 20 %: 0.04 -> 0.048.
        monitor.update(60.0, 0.058, 0.01)
        est = monitor.estimate()
        assert est.gain_drift_fraction == pytest.approx(0.2, abs=0.01)
        # 20 % of the 40 mmHg cuff pulse pressure = 8 mmHg.
        assert est.estimated_bp_error_mmhg == pytest.approx(8.0, abs=0.5)
        assert est.significant

    def test_pure_offset_drift_not_instrument_error(self, calibration):
        """A uniform shift of both levels (true BP change) must not be
        attributed to the instrument."""
        monitor = DriftMonitor(calibration)
        monitor.update(60.0, 0.06, 0.02)  # both +0.01, PP unchanged
        est = monitor.estimate()
        assert est.estimated_bp_error_mmhg == pytest.approx(0.0, abs=1e-9)
        assert est.offset_drift_raw == pytest.approx(0.01)

    def test_median_over_window(self, calibration):
        monitor = DriftMonitor(calibration)
        for k in range(20):
            monitor.update(float(k), 0.05, 0.01)
        monitor.update(20.0, 0.5, 0.01)  # one outlier beat
        est = monitor.estimate(window=10)
        assert est.gain_drift_fraction < 0.2  # outlier suppressed

    def test_requires_updates(self, calibration):
        with pytest.raises(CalibrationError):
            DriftMonitor(calibration).estimate()

    def test_time_ordering_enforced(self, calibration):
        monitor = DriftMonitor(calibration)
        monitor.update(10.0, 0.05, 0.01)
        with pytest.raises(ConfigurationError):
            monitor.update(5.0, 0.05, 0.01)


class TestPolicy:
    def test_min_interval_blocks(self):
        policy = RecalibrationPolicy(min_interval_s=120.0)
        big_drift = DriftEstimate(0.0, 0.0, 0.5, 20.0)
        assert not policy.should_recalibrate(60.0, big_drift)

    def test_max_interval_forces(self):
        policy = RecalibrationPolicy(max_interval_s=1800.0)
        assert policy.should_recalibrate(1800.0, None)

    def test_drift_triggers_early(self):
        policy = RecalibrationPolicy(drift_threshold_mmhg=5.0)
        drift = DriftEstimate(0.0, 0.0, 0.2, 8.0)
        assert policy.should_recalibrate(300.0, drift)

    def test_small_drift_waits(self):
        policy = RecalibrationPolicy(drift_threshold_mmhg=5.0)
        drift = DriftEstimate(0.0, 0.0, 0.02, 0.8)
        assert not policy.should_recalibrate(300.0, drift)

    def test_rejects_bad_intervals(self):
        with pytest.raises(ConfigurationError):
            RecalibrationPolicy(min_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            RecalibrationPolicy(min_interval_s=100.0, max_interval_s=50.0)
