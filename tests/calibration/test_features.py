"""Beat detection and feature extraction."""

import numpy as np
import pytest

from repro.calibration.features import detect_beats, lowpass_cardiac
from repro.errors import ConfigurationError, SignalQualityError
from repro.physiology.patient import VirtualPatient


@pytest.fixture(scope="module")
def clean_record():
    patient = VirtualPatient(rng=np.random.default_rng(11))
    return patient.record(duration_s=15.0, sample_rate_hz=1000.0)


class TestDetection:
    def test_beat_count(self, clean_record):
        feats = detect_beats(clean_record.pressure_mmhg, 1000.0)
        true_beats = clean_record.beat_truth.shape[0]
        assert feats.n_beats == pytest.approx(true_beats, abs=2)

    def test_systolic_levels(self, clean_record):
        feats = detect_beats(clean_record.pressure_mmhg, 1000.0)
        assert feats.mean_systolic_raw == pytest.approx(
            clean_record.systolic_mmhg, abs=2.5
        )

    def test_diastolic_levels(self, clean_record):
        feats = detect_beats(clean_record.pressure_mmhg, 1000.0)
        assert feats.mean_diastolic_raw == pytest.approx(
            clean_record.diastolic_mmhg, abs=2.5
        )

    def test_pulse_rate(self, clean_record):
        feats = detect_beats(clean_record.pressure_mmhg, 1000.0)
        assert feats.pulse_rate_bpm() == pytest.approx(70.0, abs=3.0)

    def test_feet_precede_peaks(self, clean_record):
        feats = detect_beats(clean_record.pressure_mmhg, 1000.0)
        assert np.all(feats.foot_times_s <= feats.peak_times_s)

    def test_robust_to_noise(self, clean_record):
        rng = np.random.default_rng(13)
        noisy = clean_record.pressure_mmhg + 1.5 * rng.standard_normal(
            clean_record.pressure_mmhg.size
        )
        feats = detect_beats(noisy, 1000.0)
        assert feats.pulse_rate_bpm() == pytest.approx(70.0, abs=4.0)

    def test_wrong_rate_prior_tolerated(self, clean_record):
        feats = detect_beats(
            clean_record.pressure_mmhg, 1000.0, expected_rate_bpm=100.0
        )
        assert feats.pulse_rate_bpm() == pytest.approx(70.0, abs=4.0)


class TestFailureModes:
    def test_flatline_raises(self):
        with pytest.raises(SignalQualityError, match="flat"):
            detect_beats(np.zeros(5000), 1000.0)

    def test_pure_noise_raises(self, rng):
        # White noise has no beat-scale prominent structure after the
        # cardiac low-pass... it may still alias into peaks; use tiny
        # amplitude plus a dominant linear trend to defeat prominence.
        x = np.linspace(0, 1, 5000) + 1e-6 * rng.standard_normal(5000)
        with pytest.raises(SignalQualityError):
            detect_beats(x, 1000.0)

    def test_short_record_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_beats(np.zeros(8), 1000.0)

    def test_single_beat_insufficient(self):
        t = np.arange(800) / 1000.0
        one_pulse = np.exp(-((t - 0.4) ** 2) / (2 * 0.05**2))
        with pytest.raises(SignalQualityError):
            detect_beats(one_pulse, 1000.0)


class TestLowpass:
    def test_preserves_cardiac_band(self, clean_record):
        filtered = lowpass_cardiac(clean_record.pressure_mmhg, 1000.0)
        # Pulse amplitude essentially unchanged.
        raw_pp = np.percentile(clean_record.pressure_mmhg, 98) - np.percentile(
            clean_record.pressure_mmhg, 2
        )
        filt_pp = np.percentile(filtered, 98) - np.percentile(filtered, 2)
        assert filt_pp == pytest.approx(raw_pp, rel=0.05)

    def test_removes_high_frequency(self):
        rng = np.random.default_rng(17)
        t = np.arange(4000) / 1000.0
        x = np.sin(2 * np.pi * 1.2 * t) + 0.5 * np.sin(2 * np.pi * 200 * t)
        filtered = lowpass_cardiac(x, 1000.0)
        residual = filtered - np.sin(2 * np.pi * 1.2 * t)
        assert np.sqrt(np.mean(residual[500:-500] ** 2)) < 0.03

    def test_zero_phase(self):
        """filtfilt: the pulse peak must not shift in time."""
        t = np.arange(4000) / 1000.0
        x = np.exp(-((t - 2.0) ** 2) / (2 * 0.05**2))
        filtered = lowpass_cardiac(x, 1000.0)
        assert abs(np.argmax(filtered) - np.argmax(x)) <= 2

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ConfigurationError):
            lowpass_cardiac(np.zeros(100), 1000.0, cutoff_hz=600.0)
