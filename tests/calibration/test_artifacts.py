"""Artifact detection and rejection."""

import numpy as np
import pytest

from repro.calibration.artifacts import (
    ArtifactDetector,
    score_against_truth,
)
from repro.errors import ConfigurationError
from repro.physiology.artifacts import MotionArtifactGenerator
from repro.physiology.patient import VirtualPatient

FS = 250.0


@pytest.fixture(scope="module")
def clean():
    patient = VirtualPatient(rng=np.random.default_rng(61))
    return patient.record(duration_s=30.0, sample_rate_hz=FS).pressure_mmhg


@pytest.fixture(scope="module")
def contaminated(clean):
    artifacts = MotionArtifactGenerator(
        tap_rate_per_min=10.0, flexion_rate_per_min=4.0
    ).generate(30.0, FS, rng=np.random.default_rng(62))
    return clean + artifacts.pressure_mmhg, artifacts


class TestDetection:
    def test_clean_record_not_flagged(self, clean):
        report = ArtifactDetector().detect(clean, FS)
        assert report.fraction_flagged < 0.02

    def test_all_events_overlapped(self, contaminated):
        signal, artifacts = contaminated
        report = ArtifactDetector().detect(signal, FS)
        t = artifacts.times_s
        for event in artifacts.events:
            window = (t >= event.start_s) & (
                t <= event.start_s + event.duration_s
            )
            assert report.mask[window].any(), event

    def test_sample_level_scores(self, contaminated):
        signal, artifacts = contaminated
        report = ArtifactDetector().detect(signal, FS)
        sens, spec = score_against_truth(
            report, artifacts.contaminated_mask()
        )
        # Sample-level overlap is guard-band sensitive; event-level
        # coverage (previous test) is the hard requirement.
        assert sens > 0.55
        assert spec > 0.7

    def test_clean_method_removes_flagged(self, contaminated):
        signal, _ = contaminated
        report = ArtifactDetector().detect(signal, FS)
        cleaned = report.clean(signal)
        assert cleaned.size == signal.size - report.mask.sum()

    def test_segments_counted(self, contaminated):
        signal, artifacts = contaminated
        report = ArtifactDetector().detect(signal, FS)
        assert 1 <= report.n_segments <= len(artifacts.events) + 4


class TestDetectorPieces:
    def test_isolated_tap_flagged(self, clean):
        signal = clean.copy()
        t = np.arange(signal.size) / FS
        signal += 40.0 * np.exp(-((t - 15.0) ** 2) / (2 * 0.02**2))
        report = ArtifactDetector().detect(signal, FS)
        idx = int(15.0 * FS)
        assert report.mask[idx - 25 : idx + 25].any()

    def test_isolated_flexion_flagged(self, clean):
        signal = clean.copy()
        t = np.arange(signal.size) / FS
        signal += 25.0 * np.exp(-((t - 15.0) ** 2) / (2 * 1.0**2))
        report = ArtifactDetector().detect(signal, FS)
        idx = int(15.0 * FS)
        assert report.mask[idx - 100 : idx + 100].any()

    def test_respiration_not_flagged(self, clean):
        """Physiologic baseline modulation must not trip the detector
        (it is already part of the clean patient record)."""
        report = ArtifactDetector().detect(clean, FS)
        assert report.fraction_flagged < 0.02


class TestValidation:
    def test_rejects_short_record(self):
        with pytest.raises(ConfigurationError):
            ArtifactDetector().detect(np.zeros(10), FS)

    def test_rejects_bad_factors(self):
        with pytest.raises(ConfigurationError):
            ArtifactDetector(slew_factor=0.0)

    def test_score_shape_mismatch(self, clean):
        report = ArtifactDetector().detect(clean, FS)
        with pytest.raises(ConfigurationError):
            score_against_truth(report, np.zeros(10, dtype=bool))
