"""Two-point cuff calibration."""

import numpy as np
import pytest

from repro.calibration.features import BeatFeatures
from repro.calibration.twopoint import TwoPointCalibration
from repro.errors import CalibrationError, ConfigurationError


def make_features(sys_raw=0.05, dia_raw=0.01, n=5):
    t = np.arange(n, dtype=float)
    return BeatFeatures(
        peak_times_s=t + 0.3,
        systolic_raw=np.full(n, sys_raw),
        foot_times_s=t,
        diastolic_raw=np.full(n, dia_raw),
    )


class TestFit:
    def test_anchors_exact(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        assert cal.apply(0.05) == pytest.approx(120.0)
        assert cal.apply(0.01) == pytest.approx(80.0)

    def test_linear_between(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        assert cal.apply(0.03) == pytest.approx(100.0)

    def test_gain_sign(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        assert cal.gain_mmhg_per_raw > 0

    def test_invert_round_trip(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        raw = np.linspace(0.0, 0.08, 9)
        assert cal.invert(cal.apply(raw)) == pytest.approx(raw)

    def test_rejects_coincident_levels(self):
        with pytest.raises(CalibrationError, match="coincide"):
            TwoPointCalibration.from_features(
                make_features(sys_raw=0.02, dia_raw=0.02), 120.0, 80.0
            )

    def test_rejects_inverted_cuff(self):
        with pytest.raises(ConfigurationError):
            TwoPointCalibration.from_features(make_features(), 80.0, 120.0)


class TestErrorPropagation:
    def test_cuff_bias_propagates(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        biased = cal.error_from_cuff_bias(5.0, 0.0)
        # Systolic anchor shifted: value at the systolic raw level moves
        # by exactly the bias.
        assert biased.apply(0.05) - cal.apply(0.05) == pytest.approx(5.0)
        assert biased.apply(0.01) - cal.apply(0.01) == pytest.approx(0.0)

    def test_uniform_bias_shifts_offset(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        biased = cal.error_from_cuff_bias(3.0, 3.0)
        raw = np.linspace(0.0, 0.08, 5)
        assert biased.apply(raw) - cal.apply(raw) == pytest.approx(
            3.0 * np.ones(5)
        )

    def test_describe(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        assert "mmHg" in cal.describe()


class TestScalarContract:
    def test_apply_scalar_returns_python_float(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        out = cal.apply(0.03)
        assert type(out) is float
        assert out == pytest.approx(100.0)

    def test_invert_scalar_returns_python_float(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        out = cal.invert(100.0)
        assert type(out) is float
        assert out == pytest.approx(0.03)

    def test_apply_array_stays_array(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        out = cal.apply(np.array([0.01, 0.05]))
        assert isinstance(out, np.ndarray)
        assert out.shape == (2,)

    def test_invert_rejects_zero_gain(self):
        cal = TwoPointCalibration(
            gain_mmhg_per_raw=0.0,
            offset_mmhg=100.0,
            raw_systolic=0.05,
            raw_diastolic=0.01,
            cuff_systolic_mmhg=120.0,
            cuff_diastolic_mmhg=80.0,
        )
        with pytest.raises(CalibrationError, match="degenerate"):
            cal.invert(100.0)

    def test_invert_rejects_subtolerance_gain(self):
        cal = TwoPointCalibration(
            gain_mmhg_per_raw=1e-15,
            offset_mmhg=100.0,
            raw_systolic=0.05,
            raw_diastolic=0.01,
            cuff_systolic_mmhg=120.0,
            cuff_diastolic_mmhg=80.0,
        )
        with pytest.raises(CalibrationError, match="degenerate"):
            cal.invert(np.array([90.0, 110.0]))

    def test_tiny_but_legitimate_gain_accepted(self):
        cal = TwoPointCalibration(
            gain_mmhg_per_raw=1e-9,
            offset_mmhg=100.0,
            raw_systolic=0.05,
            raw_diastolic=0.01,
            cuff_systolic_mmhg=120.0,
            cuff_diastolic_mmhg=80.0,
        )
        assert cal.invert(100.0 + 1e-6) == pytest.approx(1e3)


class TestMaskedApply:
    def test_flagged_samples_masked(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        raw = np.array([0.01, 0.03, 0.05])
        quality = np.array([True, False, True])
        out = cal.apply_masked(raw, quality)
        assert isinstance(out, np.ma.MaskedArray)
        assert list(out.mask) == [False, True, False]
        assert out.compressed() == pytest.approx([80.0, 120.0])
        # Masked statistics exclude the flagged sample.
        assert out.mean() == pytest.approx(100.0)

    def test_shape_mismatch_rejected(self):
        cal = TwoPointCalibration.from_features(make_features(), 120.0, 80.0)
        with pytest.raises(ConfigurationError):
            cal.apply_masked(np.zeros(3), np.ones(4, dtype=bool))
