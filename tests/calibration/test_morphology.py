"""Pulse-morphology metrics."""

import numpy as np
import pytest

from repro.calibration.features import detect_beats
from repro.calibration.morphology import (
    analyze_morphology,
    ensemble_average_beat,
)
from repro.errors import SignalQualityError
from repro.physiology.patient import VirtualPatient

FS = 500.0


@pytest.fixture(scope="module")
def record():
    patient = VirtualPatient(rng=np.random.default_rng(71))
    rec = patient.record(duration_s=20.0, sample_rate_hz=FS)
    feats = detect_beats(rec.pressure_mmhg, FS)
    return rec, feats


class TestEnsemble:
    def test_shape(self, record):
        rec, feats = record
        phase, wave = ensemble_average_beat(rec.pressure_mmhg, FS, feats)
        assert phase.size == wave.size == 200

    def test_range_physiologic(self, record):
        rec, feats = record
        _, wave = ensemble_average_beat(rec.pressure_mmhg, FS, feats)
        assert 70.0 < wave.min() < 90.0
        assert 110.0 < wave.max() < 130.0

    def test_noise_suppression(self, record):
        """The ensemble median suppresses additive noise."""
        rec, feats = record
        rng = np.random.default_rng(72)
        noisy = rec.pressure_mmhg + 2.0 * rng.standard_normal(
            rec.pressure_mmhg.size
        )
        _, clean_wave = ensemble_average_beat(rec.pressure_mmhg, FS, feats)
        _, noisy_wave = ensemble_average_beat(noisy, FS, feats)
        residual = noisy_wave - clean_wave
        assert np.std(residual) < 1.0  # well under the injected 2.0

    def test_too_few_beats(self, record):
        rec, feats = record
        short = rec.pressure_mmhg[: int(1.5 * FS)]
        with pytest.raises(SignalQualityError):
            feats_short = detect_beats(short, FS)
            ensemble_average_beat(short, FS, feats_short)


class TestMorphologyIndices:
    def test_notch_detected(self, record):
        rec, feats = record
        report = analyze_morphology(rec.pressure_mmhg, FS, feats)
        assert report.has_notch()
        assert 0.2 < report.notch_phase < 0.7

    def test_notch_depth_fraction(self, record):
        rec, feats = record
        report = analyze_morphology(rec.pressure_mmhg, FS, feats)
        assert 0.0 < report.notch_depth_fraction < 1.0

    def test_upstroke_time(self, record):
        """Systole peaks 80-250 ms after the foot at 70 bpm."""
        rec, feats = record
        report = analyze_morphology(rec.pressure_mmhg, FS, feats)
        assert 0.05 < report.upstroke_time_s < 0.3

    def test_dpdt_positive(self, record):
        rec, feats = record
        report = analyze_morphology(rec.pressure_mmhg, FS, feats)
        assert report.dpdt_max > 0.0

    def test_augmentation_index_range(self, record):
        rec, feats = record
        report = analyze_morphology(rec.pressure_mmhg, FS, feats)
        if np.isfinite(report.augmentation_index):
            assert 0.0 < report.augmentation_index < 1.0

    def test_scale_invariance_of_phases(self, record):
        """Morphology phases must not depend on calibration scale."""
        rec, feats = record
        a = analyze_morphology(rec.pressure_mmhg, FS, feats)
        b = analyze_morphology(10.0 * rec.pressure_mmhg + 5.0, FS, feats)
        assert a.notch_phase == pytest.approx(b.notch_phase, abs=0.02)
        assert a.upstroke_time_s == pytest.approx(b.upstroke_time_s, abs=0.01)
