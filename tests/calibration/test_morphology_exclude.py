"""Ensemble averaging with artifact exclusion masks."""

import numpy as np
import pytest

from repro.calibration.features import detect_beats
from repro.calibration.morphology import (
    analyze_morphology,
    ensemble_average_beat,
)
from repro.errors import ConfigurationError, SignalQualityError
from repro.physiology.patient import VirtualPatient

FS = 250.0


@pytest.fixture(scope="module")
def record():
    patient = VirtualPatient(rng=np.random.default_rng(75))
    rec = patient.record(duration_s=25.0, sample_rate_hz=FS)
    feats = detect_beats(rec.pressure_mmhg, FS)
    return rec.pressure_mmhg, feats


class TestExcludeMask:
    def test_empty_mask_equals_no_mask(self, record):
        waveform, feats = record
        _, a = ensemble_average_beat(waveform, FS, feats)
        _, b = ensemble_average_beat(
            waveform, FS, feats,
            exclude_mask=np.zeros(waveform.size, dtype=bool),
        )
        assert a == pytest.approx(b)

    def test_corrupted_beats_excluded(self, record):
        """Corrupt three beats heavily; with the mask, the ensemble must
        be unaffected by them."""
        waveform, feats = record
        corrupted = waveform.copy()
        mask = np.zeros(waveform.size, dtype=bool)
        for peak_t in feats.peak_times_s[3:6]:
            lo = int((peak_t - 0.3) * FS)
            hi = int((peak_t + 0.3) * FS)
            corrupted[lo:hi] += 80.0
            mask[lo:hi] = True
        _, clean_wave = ensemble_average_beat(waveform, FS, feats)
        _, masked_wave = ensemble_average_beat(
            corrupted, FS, feats, exclude_mask=mask
        )
        assert masked_wave == pytest.approx(clean_wave, abs=1.5)

    def test_all_masked_raises(self, record):
        waveform, feats = record
        with pytest.raises(SignalQualityError, match="too few"):
            ensemble_average_beat(
                waveform, FS, feats,
                exclude_mask=np.ones(waveform.size, dtype=bool),
            )

    def test_shape_mismatch_rejected(self, record):
        waveform, feats = record
        with pytest.raises(ConfigurationError):
            ensemble_average_beat(
                waveform, FS, feats,
                exclude_mask=np.zeros(10, dtype=bool),
            )

    def test_analyze_morphology_passes_mask(self, record):
        waveform, feats = record
        mask = np.zeros(waveform.size, dtype=bool)
        report = analyze_morphology(waveform, FS, feats, exclude_mask=mask)
        assert report.has_notch()
