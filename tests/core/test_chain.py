"""Readout chain: chip -> FPGA -> USB -> host."""

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.errors import ConfigurationError


@pytest.fixture()
def chain() -> ReadoutChain:
    return ReadoutChain(rng=np.random.default_rng(60))


class TestVoltageRecording:
    def test_rates_and_sizes(self, chain):
        n_out = 32
        v = np.zeros(n_out * 128)
        rec = chain.record_voltage(v)
        assert rec.sample_rate_hz == pytest.approx(1000.0)
        assert rec.codes.size == n_out
        assert rec.duration_s == pytest.approx(n_out / 1000.0)

    def test_no_frame_loss(self, chain):
        rec = chain.record_voltage(np.zeros(128 * 100))
        assert rec.lost_frames == 0
        assert rec.crc_errors == 0

    def test_dc_level_recovered(self, chain):
        v = np.full(128 * 64, 0.5 * 2.5)
        rec = chain.record_voltage(v)
        assert rec.values[16:].mean() == pytest.approx(0.5, abs=0.01)

    def test_rejects_2d(self, chain):
        with pytest.raises(ConfigurationError):
            chain.record_voltage(np.zeros((100, 2)))


class TestPressureRecording:
    def test_element_selection(self, chain):
        field = np.zeros((128 * 32, 4))
        rec = chain.record_pressure(field, element=2)
        assert rec.element == 2
        assert chain.chip.selected_element == 2

    def test_pressure_raises_codes(self, chain):
        n = 128 * 64
        quiet = chain.record_pressure(np.zeros((n, 4)), element=0)
        chain.fpga.filter.reset()
        chain.chip.modulator.reset()
        pressed = chain.record_pressure(
            np.full((n, 4), 20000.0), element=0
        )
        expected = 20000.0 * chain.chip.pressure_to_loop_gain()
        shift = pressed.values[16:].mean() - quiet.values[16:].mean()
        assert shift == pytest.approx(expected, abs=0.3 * expected)


class TestScan:
    def test_scan_shape(self, chain):
        n_mod = int(0.25 * 128e3) * 4
        field = np.zeros((n_mod, 4))
        records = chain.scan_elements(field, dwell_s=0.25)
        assert records.shape[1] == 4
        assert records.shape[0] >= 240  # 250 words minus flush

    def test_scan_detects_pulsing_element(self, chain):
        """Pulsatile load on element 1: its record shows the largest
        peak-to-peak swing (DC pedestals differ per element and are
        irrelevant to selection)."""
        n_per = int(0.25 * 128e3)
        n = n_per * 4
        t = np.arange(n) / 128e3
        field = np.zeros((n, 4))
        field[:, 1] = 10000.0 * (1 + np.sin(2 * np.pi * 5.0 * t)) / 2
        records = chain.scan_elements(field, dwell_s=0.25)
        settled = records[16:]
        swings = settled.max(axis=0) - settled.min(axis=0)
        assert np.argmax(swings) == 1

    def test_scan_too_short_rejected(self, chain):
        with pytest.raises(ConfigurationError, match="too short"):
            chain.scan_elements(np.zeros((100, 4)), dwell_s=1.0)


class TestBatchedScan:
    """batched=True converts all elements in one modulator call; the
    result must be interchangeable with the sequential visit."""

    def pulsing_field(self, n_per):
        n = n_per * 4
        t = np.arange(n) / 128e3
        field = np.zeros((n, 4))
        field[:, 1] = 10000.0 * (1 + np.sin(2 * np.pi * 5.0 * t)) / 2
        return field

    def ideal_chain(self, seed=60):
        from repro.params import NonidealityParams, SystemParams

        params = SystemParams().replace(nonideality=NonidealityParams.ideal())
        return ReadoutChain(params, rng=np.random.default_rng(seed))

    def test_batched_matches_sequential_element0_exactly(self):
        """Element 0 starts from the same (zero) state in both modes, so
        an ideal chain produces bit-identical words for it."""
        field = self.pulsing_field(int(0.1 * 128e3))
        seq = self.ideal_chain().scan_elements(field, dwell_s=0.1)
        bat = self.ideal_chain().scan_elements(field, dwell_s=0.1, batched=True)
        assert seq.shape == bat.shape
        assert np.array_equal(seq[:, 0], bat[:, 0])

    def test_batched_statistically_equivalent(self):
        """Later elements start from different modulator states; after
        the FPGA settle words the records must still agree closely."""
        field = self.pulsing_field(int(0.1 * 128e3))
        seq = self.ideal_chain().scan_elements(field, dwell_s=0.1)[16:]
        bat = self.ideal_chain().scan_elements(
            field, dwell_s=0.1, batched=True
        )[16:]
        assert np.allclose(seq.mean(axis=0), bat.mean(axis=0), atol=0.01)
        swing_seq = seq.max(axis=0) - seq.min(axis=0)
        swing_bat = bat.max(axis=0) - bat.min(axis=0)
        assert np.allclose(swing_seq, swing_bat, atol=0.02)

    def test_batched_scan_detects_pulsing_element(self, chain):
        field = self.pulsing_field(int(0.25 * 128e3))
        records = chain.scan_elements(field, dwell_s=0.25, batched=True)
        settled = records[16:]
        swings = settled.max(axis=0) - settled.min(axis=0)
        assert np.argmax(swings) == 1

    def test_scan_and_select_agrees_across_modes(self):
        from repro.array.scan import ScanController

        field = self.pulsing_field(int(0.1 * 128e3))
        picks = []
        for batched in (False, True):
            chain = self.ideal_chain()
            controller = ScanController(chain.chip.mux)
            sel = controller.scan_and_select(
                chain, field, dwell_s=0.1, batched=batched
            )
            picks.append(sel.best_index)
        assert picks[0] == picks[1] == 1
