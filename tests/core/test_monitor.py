"""End-to-end monitoring sessions (the Fig. 9 protocol)."""

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.core.monitor import BloodPressureMonitor
from repro.errors import ConfigurationError
from repro.params import PASCAL_PER_MMHG, SystemParams
from repro.physiology.patient import VirtualPatient
from repro.tonometry.contact import ContactModel
from repro.tonometry.coupling import TonometricCoupling
from repro.tonometry.placement import ArrayPlacement


@pytest.fixture(scope="module")
def result():
    """One shared short session (modulator simulation is the cost)."""
    params = SystemParams()
    rng = np.random.default_rng(70)
    chain = ReadoutChain(params, rng=rng)
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG,
    )
    coupling = TonometricCoupling(
        chain.chip.array.geometry,
        contact,
        placement=ArrayPlacement(lateral_offset_m=0.4e-3),
        rng=rng,
    )
    monitor = BloodPressureMonitor(chain, coupling)
    patient = VirtualPatient(rng=rng)
    return monitor.measure(patient, duration_s=8.0, scan_dwell_s=0.75, rng=rng)


class TestAccuracy:
    def test_systolic_error_few_mmhg(self, result):
        assert abs(result.systolic_error_mmhg) < 6.0

    def test_diastolic_error_few_mmhg(self, result):
        assert abs(result.diastolic_error_mmhg) < 6.0

    def test_waveform_rms_error(self, result):
        assert result.waveform_rms_error_mmhg() < 5.0

    def test_quality_acceptable(self, result):
        assert result.quality.acceptable

    def test_beats_detected(self, result):
        assert result.features.n_beats >= 6

    def test_pulse_rate(self, result):
        assert result.features.pulse_rate_bpm() == pytest.approx(70.0, abs=5.0)


class TestProtocol:
    def test_selection_has_contrast(self, result):
        assert result.selection.contrast >= 1.0

    def test_recording_rate(self, result):
        assert result.recording.sample_rate_hz == pytest.approx(1000.0)

    def test_calibration_anchored_to_cuff(self, result):
        assert result.measured_systolic_mmhg == pytest.approx(
            result.cuff.systolic_mmhg, abs=0.2
        )

    def test_calibrated_waveform_in_physiologic_range(self, result):
        mid = result.calibrated_mmhg[500:-500]
        assert mid.min() > 40.0
        assert mid.max() < 180.0

    def test_summary(self, result):
        text = result.summary()
        assert "measured" in text
        assert "mmHg" in text


def build_monitor(seed=70):
    params = SystemParams()
    rng = np.random.default_rng(seed)
    chain = ReadoutChain(params, rng=rng)
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG,
    )
    coupling = TonometricCoupling(
        chain.chip.array.geometry,
        contact,
        placement=ArrayPlacement(lateral_offset_m=0.4e-3),
        rng=rng,
    )
    return BloodPressureMonitor(chain, coupling)


class TestStreamingMeasure:
    """measure(streaming=True) == the batch protocol, bit for bit."""

    @pytest.fixture(scope="class")
    def pair(self):
        batch = build_monitor().measure(
            VirtualPatient(rng=np.random.default_rng(71)),
            duration_s=5.0, scan_dwell_s=0.5,
            rng=np.random.default_rng(72),
        )
        streamed = build_monitor().measure(
            VirtualPatient(rng=np.random.default_rng(71)),
            duration_s=5.0, scan_dwell_s=0.5,
            rng=np.random.default_rng(72),
            streaming=True, chunk_s=0.3,
        )
        return batch, streamed

    def test_bit_identical_recording(self, pair):
        batch, streamed = pair
        assert np.array_equal(batch.recording.codes, streamed.recording.codes)
        assert np.array_equal(batch.calibrated_mmhg, streamed.calibrated_mmhg)

    def test_streaming_carries_telemetry(self, pair):
        batch, streamed = pair
        assert batch.telemetry is None
        streamed.telemetry.reconcile()
        assert streamed.telemetry.chunks == 17  # ceil(5.0 / 0.3)
        assert streamed.telemetry.stage_seconds["synthesis"] > 0.0

    def test_chunk_memory_bounded(self, pair):
        _, streamed = pair
        n_elements = 4
        chunk_bytes = int(0.3 * 128000) * n_elements * 8
        assert streamed.telemetry.peak_chunk_bytes <= chunk_bytes

    def test_record_streaming_rejects_bad_chunk(self):
        monitor = build_monitor()
        patient = VirtualPatient(rng=np.random.default_rng(71))
        truth = patient.record(duration_s=6.0, sample_rate_hz=2000.0)
        with pytest.raises(ConfigurationError):
            monitor.record_streaming(truth, 0.0, 5.0, chunk_s=0.0)


class TestValidation:
    def test_short_duration_rejected(self):
        params = SystemParams()
        chain = ReadoutChain(params)
        coupling = TonometricCoupling(
            chain.chip.array.geometry, ContactModel()
        )
        monitor = BloodPressureMonitor(chain, coupling)
        with pytest.raises(ConfigurationError):
            monitor.measure(VirtualPatient(), duration_s=2.0)

    def test_bad_physiology_rate_rejected(self):
        params = SystemParams()
        chain = ReadoutChain(params)
        coupling = TonometricCoupling(
            chain.chip.array.geometry, ContactModel()
        )
        with pytest.raises(ConfigurationError):
            BloodPressureMonitor(chain, coupling, physiology_rate_hz=50.0)
