"""Parameter dataclasses: paper defaults and validation rules."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.params import (
    ArrayParams,
    ChipParams,
    ContactParams,
    DecimationParams,
    FrontEndParams,
    MMHG_PER_PASCAL,
    MembraneParams,
    ModulatorParams,
    NonidealityParams,
    PASCAL_PER_MMHG,
    PatientParams,
    SystemParams,
    TissueParams,
    paper_defaults,
)


class TestPaperDefaults:
    def test_paper_numbers(self):
        params = paper_defaults()
        assert params.array.membrane.side_m == pytest.approx(100e-6)
        assert params.array.membrane.thickness_m == pytest.approx(3e-6)
        assert params.array.membrane.pitch_m == pytest.approx(150e-6)
        assert params.array.rows == params.array.cols == 2
        assert params.modulator.sampling_rate_hz == pytest.approx(128e3)
        assert params.modulator.osr == 128
        assert params.modulator.output_rate_hz == pytest.approx(1000.0)
        assert params.decimation.cic_order == 3
        assert params.decimation.fir_taps == 32
        assert params.decimation.cutoff_hz == 500.0
        assert params.decimation.output_bits == 12
        assert params.chip.power_w == pytest.approx(11.5e-3)
        assert params.chip.supply_v == 5.0
        assert params.chip.die_area_m2 == pytest.approx(2.6e-3 * 1.9e-3)

    def test_unit_constants_inverse(self):
        assert MMHG_PER_PASCAL * PASCAL_PER_MMHG == pytest.approx(1.0)

    def test_replace(self):
        params = paper_defaults()
        changed = params.replace(
            array=ArrayParams(rows=4, cols=4)
        )
        assert changed.array.rows == 4
        assert params.array.rows == 2  # original untouched


class TestValidationRules:
    def test_membrane(self):
        with pytest.raises(ConfigurationError):
            MembraneParams(side_m=0.0)
        with pytest.raises(ConfigurationError):
            MembraneParams(pitch_m=50e-6)  # pitch < side
        with pytest.raises(ConfigurationError):
            MembraneParams(electrode_coverage=1.5)

    def test_array(self):
        with pytest.raises(ConfigurationError):
            ArrayParams(rows=0)
        with pytest.raises(ConfigurationError):
            ArrayParams(capacitance_mismatch_sigma=-0.1)

    def test_modulator(self):
        with pytest.raises(ConfigurationError):
            ModulatorParams(osr=1)
        with pytest.raises(ConfigurationError):
            ModulatorParams(vref_v=0.0)
        with pytest.raises(ConfigurationError):
            ModulatorParams(a1=0.0)

    def test_nonideality(self):
        with pytest.raises(ConfigurationError):
            NonidealityParams(sampling_cap_f=0.0)
        with pytest.raises(ConfigurationError):
            NonidealityParams(clock_jitter_s=-1.0)
        ideal = NonidealityParams.ideal()
        assert ideal.clock_jitter_s == 0.0
        assert ideal.sampling_cap_f == float("inf")

    def test_decimation(self):
        with pytest.raises(ConfigurationError):
            DecimationParams(cic_order=0)
        with pytest.raises(ConfigurationError):
            DecimationParams(output_bits=1)
        assert DecimationParams().total_decimation == 128

    def test_frontend(self):
        with pytest.raises(ConfigurationError):
            FrontEndParams(feedback_cap_f=0.0)

    def test_chip(self):
        with pytest.raises(ConfigurationError):
            ChipParams(power_w=0.0)

    def test_patient(self):
        with pytest.raises(ConfigurationError):
            PatientParams(systolic_mmhg=80.0, diastolic_mmhg=80.0)
        p = PatientParams()
        assert p.pulse_pressure_mmhg == pytest.approx(40.0)
        assert p.mean_rr_s == pytest.approx(60.0 / 70.0)

    def test_tissue(self):
        with pytest.raises(ConfigurationError):
            TissueParams(artery_radius_m=0.0)

    def test_contact(self):
        with pytest.raises(ConfigurationError):
            ContactParams(pdms_thickness_m=0.0)

    def test_system_osr_consistency(self):
        with pytest.raises(ConfigurationError, match="OSR"):
            SystemParams(modulator=ModulatorParams(osr=64))

    def test_consistent_system_accepted(self):
        params = SystemParams(
            modulator=ModulatorParams(osr=64),
            decimation=DecimationParams(
                cic_decimation=16, fir_decimation=4
            ),
        )
        assert params.modulator.osr == params.decimation.total_decimation

    def test_frozen(self):
        params = paper_defaults()
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.modulator.osr = 64  # type: ignore[misc]
