"""CLI entry point."""


from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "robustness" in out

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "SensorChip" in out
        assert "power" in out

    def test_run_one(self, capsys):
        assert main(["run", "membrane"]) == 0
        out = capsys.readouterr().out
        assert "rest capacitance" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_registry_complete(self):
        """Every experiment id in DESIGN.md's index is runnable."""
        expected = {
            "fig7", "fig9", "specs", "membrane", "mux", "localization",
            "baselines", "feedback", "osr", "dynamic-range",
            "noise-budget", "architectures", "robustness",
            "design-space", "pressure-linearity", "population",
        }
        assert expected == set(EXPERIMENTS)
