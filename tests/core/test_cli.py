"""CLI entry point."""


import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "robustness" in out

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "SensorChip" in out
        assert "power" in out

    def test_run_one(self, capsys):
        assert main(["run", "membrane"]) == 0
        out = capsys.readouterr().out
        assert "rest capacitance" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_registry_complete(self):
        """Every experiment id in DESIGN.md's index is runnable."""
        expected = {
            "fig7", "fig9", "specs", "membrane", "mux", "localization",
            "baselines", "feedback", "osr", "dynamic-range",
            "noise-budget", "architectures", "robustness",
            "design-space", "pressure-linearity", "population",
        }
        assert expected == set(EXPERIMENTS)

    def test_list_marks_backend_support(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "fig7" in out
        line = next(li for li in out.splitlines() if li.strip().startswith("fig7"))
        assert "[--backend]" in line


class TestBackendFlag:
    def test_backend_threaded_to_runner(self, capsys, monkeypatch):
        seen = {}

        class Result:
            def rows(self):
                return [("q", "paper", "measured")]

        def runner(backend="fast"):
            seen["backend"] = backend
            return Result()

        monkeypatch.setitem(EXPERIMENTS, "fig7", ("stub", runner, True))
        assert main(["run", "fig7", "--backend", "reference"]) == 0
        assert seen["backend"] == "reference"

    def test_backend_ignored_note_for_unsupported(self, capsys, monkeypatch):
        class Result:
            def rows(self):
                return [("q", "paper", "measured")]

        monkeypatch.setitem(
            EXPERIMENTS, "specs", ("stub", lambda: Result(), False)
        )
        assert main(["run", "specs", "--backend", "reference"]) == 0
        assert "ignores --backend" in capsys.readouterr().err

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig7", "--backend", "warp"])


class TestStreamCommand:
    def test_stream_prints_live_telemetry(self, capsys):
        code = main(
            ["stream", "--duration", "1.5", "--chunk", "0.5", "--element", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "element 1 forced" in out
        assert "PipelineTelemetry" in out
        assert "words," in out  # the live per-chunk line
        assert "telemetry reconciles" in out

    def test_stream_scans_by_default(self, capsys):
        assert main(["stream", "--duration", "1.0", "--chunk", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "scan: element" in out

    def test_stream_rejects_bad_duration(self, capsys):
        assert main(["stream", "--duration", "-1"]) == 2
        assert "positive" in capsys.readouterr().err
