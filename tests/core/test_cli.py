"""CLI entry point."""


import pytest

from repro.cli import EXPERIMENTS, JOBS_AWARE, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "robustness" in out

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "SensorChip" in out
        assert "power" in out

    def test_run_one(self, capsys):
        assert main(["run", "membrane"]) == 0
        out = capsys.readouterr().out
        assert "rest capacitance" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_registry_complete(self):
        """Every experiment id in DESIGN.md's index is runnable."""
        expected = {
            "fig7", "fig9", "specs", "membrane", "mux", "localization",
            "imaging",
            "baselines", "feedback", "osr", "dynamic-range",
            "noise-budget", "architectures", "robustness",
            "robustness-sweep", "design-space", "pressure-linearity",
            "population", "chopper", "faults",
        }
        assert expected == set(EXPERIMENTS)

    def test_jobs_aware_subset_of_registry(self):
        assert JOBS_AWARE <= set(EXPERIMENTS)

    def test_list_marks_backend_support(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "fig7" in out
        line = next(li for li in out.splitlines() if li.strip().startswith("fig7"))
        assert "[--backend]" in line


class TestBackendFlag:
    def test_backend_threaded_to_runner(self, capsys, monkeypatch):
        seen = {}

        class Result:
            def rows(self):
                return [("q", "paper", "measured")]

        def runner(backend="fast"):
            seen["backend"] = backend
            return Result()

        monkeypatch.setitem(EXPERIMENTS, "fig7", ("stub", runner, True))
        assert main(["run", "fig7", "--backend", "reference"]) == 0
        assert seen["backend"] == "reference"

    def test_backend_ignored_note_for_unsupported(self, capsys, monkeypatch):
        class Result:
            def rows(self):
                return [("q", "paper", "measured")]

        monkeypatch.setitem(
            EXPERIMENTS, "specs", ("stub", lambda: Result(), False)
        )
        assert main(["run", "specs", "--backend", "reference"]) == 0
        assert "ignores --backend" in capsys.readouterr().err

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig7", "--backend", "warp"])


class TestParallelCommands:
    def test_jobs_threaded_to_runner(self, capsys, monkeypatch):
        seen = {}

        class Result:
            def rows(self):
                return [("q", "paper", "measured")]

        def runner(jobs=1):
            seen["jobs"] = jobs
            return Result()

        monkeypatch.setitem(EXPERIMENTS, "osr", ("stub", runner, False))
        assert main(["run", "osr", "--jobs", "3"]) == 0
        assert seen["jobs"] == 3

    def test_jobs_ignored_note_for_serial_experiment(self, capsys, monkeypatch):
        class Result:
            def rows(self):
                return [("q", "paper", "measured")]

        monkeypatch.setitem(
            EXPERIMENTS, "specs", ("stub", lambda: Result(), False)
        )
        assert main(["run", "specs", "--jobs", "2"]) == 0
        assert "ignores --jobs" in capsys.readouterr().err

    def test_run_telemetry_footer(self, capsys):
        assert main(["run", "chopper", "--jobs", "2", "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "ExecutorTelemetry" in out
        assert "telemetry reconciles" in out

    def test_population_command_prints_telemetry(self, capsys):
        code = main(
            ["population", "--subjects", "3", "--duration", "6", "--jobs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "passes AAMI criterion" in out
        assert "ExecutorTelemetry" in out
        assert "telemetry reconciles" in out

    def test_population_rejects_tiny_cohort(self, capsys):
        assert main(["population", "--subjects", "2"]) == 2
        assert ">= 3 subjects" in capsys.readouterr().err

    def test_ablation_command_prints_telemetry(self, capsys, monkeypatch):
        from repro.cli import ABLATIONS
        from repro.parallel import ExecutorTelemetry

        class Result:
            telemetry = ExecutorTelemetry(jobs=2)

            def rows(self):
                return [("q", "paper", "measured")]

        seen = {}

        def runner(jobs=1):
            seen["jobs"] = jobs
            return Result()

        monkeypatch.setitem(ABLATIONS, "osr", runner)
        assert main(["ablation", "osr", "--jobs", "2"]) == 0
        assert seen["jobs"] == 2
        out = capsys.readouterr().out
        assert "ExecutorTelemetry" in out

    def test_ablation_unknown_name(self, capsys):
        assert main(["ablation", "bogus"]) == 2
        assert "unknown ablation" in capsys.readouterr().err


class TestStreamCommand:
    def test_stream_prints_live_telemetry(self, capsys):
        code = main(
            ["stream", "--duration", "1.5", "--chunk", "0.5", "--element", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "element 1 forced" in out
        assert "PipelineTelemetry" in out
        assert "words," in out  # the live per-chunk line
        assert "telemetry reconciles" in out

    def test_stream_scans_by_default(self, capsys):
        assert main(["stream", "--duration", "1.0", "--chunk", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "scan: element" in out

    def test_stream_rejects_bad_duration(self, capsys):
        assert main(["stream", "--duration", "-1"]) == 2
        assert "positive" in capsys.readouterr().err
