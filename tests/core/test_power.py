"""Power model anchored at 11.5 mW / 5 V / 128 kHz."""

import pytest

from repro.core.power import PowerModel
from repro.errors import ConfigurationError
from repro.params import ChipParams


@pytest.fixture(scope="module")
def model() -> PowerModel:
    return PowerModel()


class TestAnchor:
    def test_reproduces_paper_point(self, model):
        report = model.report()
        assert report.total_w == pytest.approx(11.5e-3, rel=1e-9)
        assert model.anchor_error_w() == pytest.approx(0.0, abs=1e-12)

    def test_split(self, model):
        report = model.report()
        assert report.static_w == pytest.approx(0.6 * 11.5e-3)
        assert report.dynamic_w == pytest.approx(0.4 * 11.5e-3)

    def test_energy_per_conversion(self, model):
        report = model.report()
        assert report.energy_per_conversion_j == pytest.approx(
            11.5e-3 / 128e3
        )


class TestScaling:
    def test_dynamic_scales_with_rate(self, model):
        double = model.report(sampling_rate_hz=256e3)
        base = model.report()
        assert double.dynamic_w == pytest.approx(2 * base.dynamic_w)
        assert double.static_w == pytest.approx(base.static_w)

    def test_supply_scaling(self, model):
        low = model.report(supply_v=3.3)
        base = model.report()
        assert low.dynamic_w == pytest.approx(
            base.dynamic_w * (3.3 / 5.0) ** 2
        )
        assert low.static_w == pytest.approx(base.static_w * 3.3 / 5.0)

    def test_budget_inverse(self, model):
        rate = model.rate_for_power_budget_w(11.5e-3)
        assert rate == pytest.approx(128e3, rel=1e-9)

    def test_budget_below_static_rejected(self, model):
        with pytest.raises(ConfigurationError, match="static floor"):
            model.rate_for_power_budget_w(1e-3)

    def test_bad_operating_point(self, model):
        with pytest.raises(ConfigurationError):
            model.report(sampling_rate_hz=-1.0)


class TestConfiguration:
    def test_custom_split(self):
        all_static = PowerModel(static_fraction=1.0)
        assert all_static.report(sampling_rate_hz=1e6).total_w == (
            pytest.approx(11.5e-3)
        )

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            PowerModel(static_fraction=1.5)

    def test_describe(self, model):
        assert "mW" in model.report().describe()

    def test_custom_chip(self):
        chip = ChipParams(power_w=20e-3)
        assert PowerModel(chip).report().total_w == pytest.approx(20e-3)
