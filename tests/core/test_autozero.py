"""Auto-zero offset calibration."""

import numpy as np
import pytest

from repro.core.autozero import AutoZeroController, AutoZeroState
from repro.core.chain import ReadoutChain
from repro.errors import ConfigurationError
from repro.params import ArrayParams, SystemParams


@pytest.fixture(scope="module")
def chain() -> ReadoutChain:
    params = SystemParams(
        array=ArrayParams(capacitance_mismatch_sigma=0.005)
    )
    return ReadoutChain(params, rng=np.random.default_rng(90))


@pytest.fixture(scope="module")
def state(chain) -> AutoZeroState:
    return AutoZeroController(chain, burst_words=48).measure()


class TestMeasurement:
    def test_offsets_match_analytic(self, chain, state):
        expected = AutoZeroController(chain).expected_offsets_fs()
        assert state.offsets_fs == pytest.approx(expected, abs=2e-3)

    def test_offsets_nonzero_with_mismatch(self, state):
        assert np.max(np.abs(state.offsets_fs)) > 1e-3

    def test_one_offset_per_element(self, chain, state):
        assert state.offsets_fs.size == chain.chip.array.n_elements


class TestCorrection:
    def test_correct_removes_pedestal(self, chain, state):
        """A corrected quiet record reads ~0."""
        osr = chain.params.modulator.osr
        quiet = np.zeros((64 * osr, chain.chip.array.n_elements))
        rec = chain.record_pressure(quiet, element=1)
        corrected = state.correct(rec.values[16:], element=1)
        assert abs(float(np.mean(corrected))) < 1.5e-3

    def test_correct_preserves_signal(self, state):
        raw = np.array([0.1, 0.2])
        corrected = state.correct(raw, element=0)
        assert np.diff(corrected)[0] == pytest.approx(0.1)

    def test_correct_validates_element(self, state):
        with pytest.raises(ConfigurationError):
            state.correct(np.zeros(3), element=99)


class TestValidation:
    def test_rejects_small_burst(self, chain):
        with pytest.raises(ConfigurationError):
            AutoZeroController(chain, burst_words=2)

    def test_rejects_negative_flush(self, chain):
        with pytest.raises(ConfigurationError):
            AutoZeroController(chain, flush_words=-1)
