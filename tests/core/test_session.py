"""Streaming acquisition sessions and their telemetry."""

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.core.session import STAGES, PipelineTelemetry
from repro.errors import ConfigurationError


def pressure_field(n, n_elements=4, seed=0):
    """A plausible membrane-pressure field: offset + per-element sines."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    phases = rng.uniform(0, 2 * np.pi, size=n_elements)
    field = 2000.0 + 400.0 * np.sin(
        2 * np.pi * 20.0 * t[:, None] / 128000.0 + phases[None, :]
    )
    return field


class TestAcquisitionSession:
    def test_incremental_words_match_recording(self):
        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session(element=1)
        field = pressure_field(128 * 60)
        got = [session.feed_pressure(field[:4000])]
        got.append(session.feed_pressure(field[4000:]))
        got.append(session.finish())
        rec = session.recording()
        assert np.array_equal(np.concatenate(got), rec.codes)

    def test_feed_after_finish_rejected(self):
        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session()
        session.feed_voltage(np.zeros(256))
        session.finish()
        with pytest.raises(ConfigurationError):
            session.feed_voltage(np.zeros(256))

    def test_mixed_paths_rejected(self):
        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session()
        session.feed_pressure(pressure_field(256))
        with pytest.raises(ConfigurationError):
            session.feed_voltage(np.zeros(256))

    def test_bad_shapes_rejected(self):
        chain = ReadoutChain(rng=np.random.default_rng(3))
        with pytest.raises(ConfigurationError):
            chain.session().feed_pressure(np.zeros(256))
        with pytest.raises(ConfigurationError):
            chain.session().feed_voltage(np.zeros((256, 4)))

    def test_empty_chunk_is_a_noop(self):
        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session()
        out = session.feed_voltage(np.zeros(0))
        assert out.size == 0
        assert session.telemetry.chunks == 0

    def test_finish_is_idempotent(self):
        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session()
        session.feed_voltage(np.zeros(128 * 40))
        first = session.finish()
        assert session.finished
        assert session.finish().size == 0
        assert first.size >= 0

    def test_words_available_tracks_stream(self):
        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session(element=0)
        session.feed_pressure(pressure_field(128 * 60))
        session.finish()
        assert session.words_available == session.recording().codes.size

    def test_recording_reports_no_loss_on_clean_link(self):
        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session(element=2)
        session.feed_pressure(pressure_field(128 * 60))
        rec = session.recording()
        assert rec.lost_frames == 0
        assert rec.crc_errors == 0
        assert rec.lost_samples == 0


class TestSessionTelemetry:
    @pytest.fixture()
    def telemetry(self):
        chain = ReadoutChain(rng=np.random.default_rng(5))
        session = chain.session(element=1)
        field = pressure_field(128 * 100 + 37)
        for start in range(0, field.shape[0], 3000):
            session.feed_pressure(field[start : start + 3000])
        session.finish()
        return session.telemetry

    def test_counters_reconcile(self, telemetry):
        telemetry.reconcile()
        telemetry.reconcile(lossless=True)

    def test_modulator_identity(self, telemetry):
        """words = ceil(samples / R); remainder = in-flight samples."""
        tm = telemetry
        n, r = tm.mod_samples_in, tm.decimation_factor
        assert tm.bits_out == n == 128 * 100 + 37
        assert tm.words_filtered == -(-n // r)
        assert n == r * (tm.words_filtered - 1) + 1 + tm.filter_remainder
        assert 0 <= tm.filter_remainder < r

    def test_framing_identity(self, telemetry):
        assert telemetry.frames_framed == (
            telemetry.frames_decoded + telemetry.lost_frames
        )
        assert telemetry.lost_frames == 0
        assert telemetry.crc_errors == 0

    def test_delivery_identity(self, telemetry):
        assert telemetry.words_delivered == (
            telemetry.words_filtered - telemetry.words_suppressed
        )

    def test_peak_chunk_bytes(self, telemetry):
        assert telemetry.peak_chunk_bytes == 3000 * 4 * 8

    def test_stage_seconds_populated(self, telemetry):
        assert set(telemetry.stage_seconds) == set(STAGES)
        assert telemetry.stage_seconds["modulator"] > 0.0
        assert telemetry.throughput_msps() > 0.0

    def test_describe_mentions_all_stages(self, telemetry):
        text = telemetry.describe()
        assert "modulator" in text
        assert "delivered" in text
        assert "MS/s" in text


class TestTelemetryValidation:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineTelemetry().add_stage_seconds("warp-drive", 1.0)

    def test_reconcile_catches_bit_mismatch(self):
        tm = PipelineTelemetry(mod_samples_in=100, bits_out=99)
        with pytest.raises(ConfigurationError):
            tm.reconcile()

    def test_reconcile_catches_filter_overrun(self):
        tm = PipelineTelemetry(
            decimation_factor=128,
            mod_samples_in=100,
            bits_out=100,
            words_filtered=2,
        )
        with pytest.raises(ConfigurationError):
            tm.reconcile()

    def test_reconcile_catches_frame_mismatch(self):
        tm = PipelineTelemetry(frames_framed=3, frames_decoded=1, lost_frames=1)
        with pytest.raises(ConfigurationError):
            tm.reconcile()

    def test_reconcile_catches_lost_words_on_lossless_link(self):
        tm = PipelineTelemetry(
            decimation_factor=128,
            mod_samples_in=256,
            bits_out=256,
            words_filtered=2,
            words_delivered=1,
        )
        with pytest.raises(ConfigurationError):
            tm.reconcile(lossless=True)

    def test_lossy_link_skips_delivery_identity(self):
        tm = PipelineTelemetry(
            decimation_factor=128,
            mod_samples_in=256,
            bits_out=256,
            words_filtered=2,
            words_delivered=1,
            frames_framed=2,
            frames_decoded=1,
            lost_frames=1,
        )
        tm.reconcile()  # loss observed -> delivery identity not enforced

    def test_throughput_zero_without_time(self):
        assert PipelineTelemetry().throughput_msps() == 0.0


class TestDegenerateChunking:
    """Zero-length and single-sample chunks through the session."""

    def test_zero_length_chunks_interleaved(self):
        field = pressure_field(128 * 40)
        chain = ReadoutChain(rng=np.random.default_rng(3))
        batch = chain.record_pressure(field, element=1)

        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session(element=1)
        empty = field[:0]
        session.feed_pressure(empty)
        session.feed_pressure(field[:4000])
        session.feed_pressure(empty)
        session.feed_pressure(field[4000:])
        session.feed_pressure(empty)
        session.finish()
        rec = session.recording()
        assert np.array_equal(rec.codes, batch.codes)
        session.telemetry.reconcile()

    def test_single_sample_chunks_bit_identical(self):
        field = pressure_field(128 * 8)  # short: one row per feed call
        chain = ReadoutChain(rng=np.random.default_rng(3))
        batch = chain.record_pressure(field, element=1)

        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session(element=1)
        for row in field:
            session.feed_pressure(row[None, :])
        session.finish()
        rec = session.recording()
        assert np.array_equal(rec.codes, batch.codes)
        session.telemetry.reconcile()

    def test_mixed_degenerate_splits_reconcile(self):
        field = pressure_field(128 * 40)
        chain = ReadoutChain(rng=np.random.default_rng(3))
        batch = chain.record_pressure(field, element=1)

        chain = ReadoutChain(rng=np.random.default_rng(3))
        session = chain.session(element=1)
        cuts = [0, 0, 1, 2, 129, 130, 130, field.shape[0]]
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            session.feed_pressure(field[lo:hi])
        session.finish()
        rec = session.recording()
        assert np.array_equal(rec.codes, batch.codes)
        assert rec.quality.all()
        session.telemetry.reconcile()
