"""Monitor with artifact rejection enabled."""

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.core.monitor import BloodPressureMonitor
from repro.params import PASCAL_PER_MMHG, SystemParams
from repro.physiology.patient import VirtualPatient
from repro.tonometry.contact import ContactModel
from repro.tonometry.coupling import TonometricCoupling


def build_monitor(artifact_rejection: bool, seed: int = 70):
    params = SystemParams()
    rng = np.random.default_rng(seed)
    chain = ReadoutChain(params, rng=rng)
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG,
    )
    coupling = TonometricCoupling(
        chain.chip.array.geometry, contact, rng=rng
    )
    return BloodPressureMonitor(
        chain, coupling, artifact_rejection=artifact_rejection
    )


class TestArtifactRejectionMode:
    @pytest.fixture(scope="class")
    def result(self):
        monitor = build_monitor(True)
        patient = VirtualPatient(rng=np.random.default_rng(71))
        return monitor.measure(
            patient, duration_s=7.0, scan_dwell_s=0.5,
            rng=np.random.default_rng(72),
        )

    def test_report_present(self, result):
        assert result.artifact_report is not None

    def test_clean_record_barely_flagged(self, result):
        """With no motion injected, the detector should flag almost
        nothing — the false-positive budget of the defaults."""
        assert result.artifact_report.fraction_flagged < 0.1

    def test_accuracy_unaffected_on_clean_records(self, result):
        assert abs(result.systolic_error_mmhg) < 6.0
        assert abs(result.diastolic_error_mmhg) < 6.0

    def test_disabled_mode_has_no_report(self):
        monitor = build_monitor(False)
        patient = VirtualPatient(rng=np.random.default_rng(73))
        result = monitor.measure(
            patient, duration_s=6.0, scan_dwell_s=0.5,
            rng=np.random.default_rng(74),
        )
        assert result.artifact_report is None
