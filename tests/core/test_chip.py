"""Sensor chip integration: both acquisition paths."""

import numpy as np
import pytest

from repro.core.chip import SensorChip
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def chip() -> SensorChip:
    return SensorChip(rng=np.random.default_rng(50))


class TestVoltagePath:
    def test_dc_tracking(self, chip):
        chip.modulator.reset()
        v = np.full(20000, 0.5 * chip.params.modulator.vref_v)
        out = chip.acquire_voltage(v)
        assert out.mean == pytest.approx(0.5, abs=0.02)

    def test_bitstream_pm1(self, chip):
        chip.modulator.reset()
        out = chip.acquire_voltage(np.zeros(1000))
        assert set(np.unique(out.bitstream)) <= {-1, 1}


class TestPressurePath:
    def test_pressure_changes_bitstream_mean(self, chip):
        """Same element quiet vs pressed: the mismatch pedestal cancels
        and the shift equals pressure * chain gain."""
        chip.modulator.reset()
        n = 20000
        quiet = chip.acquire_pressure(np.zeros((n, 4)))
        chip.modulator.reset()
        pressed = chip.acquire_pressure(np.full((n, 4), 20000.0))
        expected = 20000.0 * chip.pressure_to_loop_gain()
        assert pressed.mean - quiet.mean == pytest.approx(
            expected, abs=0.3 * expected
        )

    def test_selected_element_matters(self, chip):
        """Loading element 3 shifts element 3's reading, not element 0's
        (each compared against its own quiet baseline, so per-element
        mismatch pedestals cancel)."""
        n = 20000
        loaded = np.zeros((n, 4))
        loaded[:, 3] = 20000.0
        quiet = np.zeros((n, 4))

        def mean_on(element, field):
            chip.modulator.reset()
            chip.select_element(element)
            return chip.acquire_pressure(field).mean

        shift_elem3 = mean_on(3, loaded) - mean_on(3, quiet)
        shift_elem0 = mean_on(0, loaded) - mean_on(0, quiet)
        assert shift_elem3 > 0.008
        assert abs(shift_elem0) < 0.25 * shift_elem3

    def test_rejects_1d_field(self, chip):
        with pytest.raises(ConfigurationError):
            chip.acquire_pressure(np.zeros(100))


class TestDerived:
    def test_pressure_gain_positive(self, chip):
        assert chip.pressure_to_loop_gain() > 0

    def test_full_scale_pressure_sensible(self, chip):
        # ~ FS / (sens * 1/Cfb): should be far above physiologic range.
        fs = chip.full_scale_pressure_pa()
        assert 100e3 < fs < 100e6

    def test_describe(self, chip):
        text = chip.describe()
        assert "SensorChip" in text
        assert "pressure gain" in text
