"""Saturation episodes and the autozero re-trigger loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    AutoZeroRetrigger,
    SaturationEpisode,
    SaturationEpisodeDetector,
)


def record(*spans, n=200, level=2047):
    codes = np.zeros(n, dtype=np.int64)
    for start, stop in spans:
        codes[start:stop] = level
    return codes


class _StubController:
    """Counts measure() calls in place of a real AutoZeroController."""

    def __init__(self):
        self.calls: list[float] = []

    def measure(self, time_s: float = 0.0):
        self.calls.append(time_s)
        return f"state-{len(self.calls)}"


class TestEpisodeDetector:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SaturationEpisodeDetector(rail_level=0)
        with pytest.raises(ConfigurationError):
            SaturationEpisodeDetector(min_run=0)

    def test_short_run_rejected(self):
        detector = SaturationEpisodeDetector(min_run=4)
        assert detector.feed(record((50, 53))) == []
        assert detector.flush() is None

    def test_episode_boundaries(self):
        detector = SaturationEpisodeDetector(min_run=4, clear_run=8)
        [episode] = detector.feed(record((50, 70)))
        assert episode == SaturationEpisode(start_index=50, end_index=70)
        assert episode.duration_samples == 20

    def test_brief_dip_does_not_close(self):
        # A 3-sample dip inside a railing episode (clear_run=8) merges.
        codes = record((50, 60), (63, 75))
        detector = SaturationEpisodeDetector(min_run=4, clear_run=8)
        [episode] = detector.feed(codes)
        assert episode.start_index == 50
        assert episode.end_index == 75

    def test_chunked_equals_batch(self):
        codes = record((30, 60), (120, 160))
        batch = SaturationEpisodeDetector().feed(codes)
        chunked_detector = SaturationEpisodeDetector()
        chunked = []
        for chunk in np.array_split(codes, 13):
            chunked += chunked_detector.feed(chunk)
        assert batch == chunked

    def test_flush_closes_open_episode(self):
        detector = SaturationEpisodeDetector(min_run=4)
        assert detector.feed(record((190, 200))) == []
        assert detector.episode_open
        episode = detector.flush()
        assert episode == SaturationEpisode(start_index=190, end_index=200)
        assert not detector.episode_open

    def test_negative_rail_counts(self):
        detector = SaturationEpisodeDetector()
        [episode] = detector.feed(record((10, 30), level=-2048))
        assert episode.start_index == 10


class TestAutoZeroRetrigger:
    def test_closed_episode_fires_measure(self):
        controller = _StubController()
        retrigger = AutoZeroRetrigger(controller)
        retrigger.observe(record((50, 70)), time_s=1.5)
        assert retrigger.retriggers == 1
        assert controller.calls == [1.5]
        assert retrigger.state == "state-1"
        assert len(retrigger.episodes) == 1

    def test_clean_record_never_fires(self):
        controller = _StubController()
        retrigger = AutoZeroRetrigger(controller)
        retrigger.observe(record(), final=True)
        assert retrigger.retriggers == 0
        assert controller.calls == []

    def test_final_flushes_open_episode(self):
        controller = _StubController()
        retrigger = AutoZeroRetrigger(controller)
        retrigger.observe(record((190, 200)), time_s=2.0, final=True)
        assert retrigger.retriggers == 1
        assert retrigger.episodes[0].end_index == 200

    def test_one_retrigger_per_chunk_with_closures(self):
        controller = _StubController()
        retrigger = AutoZeroRetrigger(controller)
        # Two episodes closing in the same chunk: one re-zero suffices.
        retrigger.observe(record((30, 60), (120, 160)))
        assert len(retrigger.episodes) == 2
        assert retrigger.retriggers == 1
