"""Fault wiring through AcquisitionSession: identity, flags, accounting."""

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.daq.fpga import FPGAFilterBank
from repro.daq.usb import FrameDecoder
from repro.faults import FaultInjector, FaultSpec
from repro.params import SystemParams


def pressure_field(duration_s=0.5, fs=128_000, n_elements=4):
    t = np.arange(int(duration_s * fs)) / fs
    wave = 10_000.0 + 15_000.0 * np.sin(2 * np.pi * 8.0 * t)
    return np.tile(wave[:, None], (1, n_elements))


def clean_record(backend="fast", duration_s=0.5, entropy=77):
    chain = ReadoutChain(rng=np.random.default_rng(entropy), backend=backend)
    return chain.record_pressure(pressure_field(duration_s), element=1)


class TestNoFaultIdentity:
    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_empty_injector_is_bit_identical(self, backend):
        """With no scheduled events the fault hooks must be invisible:
        the faulted session's output equals the ``faults=None`` path
        bit for bit on both modulator backends."""
        duration = 0.25 if backend == "reference" else 0.5
        baseline = clean_record(backend, duration)
        chain = ReadoutChain(
            rng=np.random.default_rng(77), backend=backend
        )
        hooked = chain.record_pressure(
            pressure_field(duration),
            element=1,
            faults=FaultInjector([], seed=0),
        )
        assert np.array_equal(baseline.codes, hooked.codes)
        assert hooked.quality.all()
        assert hooked.quality_fraction == 1.0

    def test_clean_session_telemetry_strict(self):
        chain = ReadoutChain(rng=np.random.default_rng(77))
        session = chain.session(element=1, faults=FaultInjector([], seed=0))
        session.feed_pressure(pressure_field(0.25))
        session.finish()
        tm = session.telemetry
        assert tm.faults_injected == 0
        assert tm.frames_unaccounted == 0
        tm.reconcile()  # still the strict lossless contract


class TestFaultedSessions:
    def faulted_record(self, spec, duration_s=0.5, entropy=77):
        chain = ReadoutChain(rng=np.random.default_rng(entropy))
        injector = FaultInjector([spec], seed=3)
        session = chain.session(element=1, faults=injector)
        for chunk in np.array_split(pressure_field(duration_s), 5):
            session.feed_pressure(chunk)
        session.finish()
        return chain, session, session.recording()

    def test_stuck_comparator_rails_are_flagged(self):
        spec = FaultSpec("stuck_comparator", start_s=0.2, duration_s=0.1)
        _, session, rec = self.faulted_record(spec)
        assert rec.codes.max() >= 2007  # the window rails positive
        # The event core ([0.2 s, 0.3 s) minus the post-switch
        # suppression offset) must be flagged bad.
        assert not rec.quality[210:280].any()
        assert rec.quality[:150].all()
        assert session.telemetry.faults_injected == 1

    def test_frame_drop_is_accounted(self):
        spec = FaultSpec("frame_drop", start_s=0.2)
        clean = clean_record()
        _, session, rec = self.faulted_record(spec)
        tm = session.telemetry
        tm.reconcile()
        assert tm.lost_frames == 1
        assert rec.codes.size < clean.codes.size
        assert rec.lost_samples > 0
        assert len(session.stream.gaps(1)) == 1
        # The gap guard flags the stretch around the loss.
        gap = session.stream.gaps(1)[0].sample_index
        assert not rec.quality[gap : gap + 8].any()

    def test_boundary_frame_drop_counts_full_frame_lost(self):
        """A frame dropped right before the stream's short flush frame
        must be booked at the link's full frame size. The old estimate
        used the payload size of the frame *after* the gap — here the
        finish() flush frame — undercounting the loss and breaking
        sample conservation at chunk boundaries."""
        spec = FaultSpec("frame_drop", start_s=0.4)
        chain, session, rec = self.faulted_record(spec)
        spf = chain.fpga.encoder.samples_per_frame
        tm = session.telemetry
        tm.reconcile()
        assert tm.lost_frames == 1
        [gap] = session.stream.gaps(1)
        # The dropped frame was a full frame even though its follower
        # (the final flush) is shorter.
        assert gap.lost_frames == 1
        assert gap.lost_samples == spf
        assert rec.lost_samples == spf
        # Sample conservation closes exactly with the corrected count.
        assert (
            tm.words_delivered + rec.lost_samples
            == tm.words_filtered - tm.words_suppressed
        )

    def test_tail_frame_drop_caught_by_frame_accounting(self):
        """Dropping the final (flush) frame leaves no later sequence
        number to reveal the gap — only the framed-vs-decoded telemetry
        identity can witness it."""
        spec = FaultSpec("frame_drop", start_s=0.448)
        _, session, _ = self.faulted_record(spec)
        tm = session.telemetry
        assert tm.lost_frames == 0  # sequence numbers saw nothing
        assert tm.frames_unaccounted == 1
        tm.reconcile()  # relaxed contract: accounted as fault fallout

    def test_word_corruption_flagged_as_spike(self):
        spec = FaultSpec("word_corruption", start_s=0.25, magnitude=1024)
        clean = clean_record()
        _, _, rec = self.faulted_record(spec)
        [changed] = np.flatnonzero(rec.codes != clean.codes)
        assert not rec.quality[changed]

    def test_hooks_restored_after_finish(self):
        spec = FaultSpec("sdm_saturation", start_s=0.1, duration_s=0.1)
        chain, session, _ = self.faulted_record(spec)
        assert chain.chip.loop_input_hook is None
        assert chain.fpga.word_hook is None
        assert session.telemetry.faults_injected == 1

    def test_chunking_invariance_with_faults(self):
        spec = FaultSpec("element_dropout", start_s=0.15, duration_s=0.2)
        field = pressure_field(0.5)
        records = []
        for n_chunks in (1, 3, 11):
            chain = ReadoutChain(rng=np.random.default_rng(5))
            session = chain.session(
                element=1, faults=FaultInjector([spec], seed=3)
            )
            for chunk in np.array_split(field, n_chunks):
                if chunk.size:
                    session.feed_pressure(chunk)
            session.finish()
            records.append(session.recording())
        assert np.array_equal(records[0].codes, records[1].codes)
        assert np.array_equal(records[0].codes, records[2].codes)
        assert np.array_equal(records[0].quality, records[1].quality)
        assert np.array_equal(records[0].quality, records[2].quality)


class TestWordHookSaturation:
    def test_word_hook_output_saturates_not_wraps(self):
        """A hook pushing codes past the i16 range must saturate at the
        asymmetric rails; the old astype(int16) silently wrapped."""
        params = SystemParams()
        fpga = FPGAFilterBank(
            params=params.decimation,
            input_rate_hz=params.modulator.sampling_rate_hz,
        )
        fpga.word_hook = lambda codes: codes + 40_000
        payload = fpga.process(np.ones(128 * 40)) + fpga.finish()
        frames = FrameDecoder().feed(payload)
        samples = np.concatenate([f.samples for f in frames])
        assert samples.size > 0
        assert samples.max() == 32767
        assert samples.min() >= 0  # wraparound would go deeply negative

    def test_negative_rail_is_asymmetric(self):
        params = SystemParams()
        fpga = FPGAFilterBank(
            params=params.decimation,
            input_rate_hz=params.modulator.sampling_rate_hz,
        )
        fpga.word_hook = lambda codes: codes - 40_000
        payload = fpga.process(np.ones(128 * 40)) + fpga.finish()
        frames = FrameDecoder().feed(payload)
        samples = np.concatenate([f.samples for f in frames])
        assert samples.min() == -32768
        assert samples.max() < 0
