"""Quality-mask detectors and the timeline expansion."""

import numpy as np
import pytest

from repro.daq.stream import StreamGap
from repro.errors import ConfigurationError
from repro.faults import QualityConfig, quality_mask, timeline_quality

#: Precision config: every windowed detector off, no dilation, so each
#: test sees exactly one detector's verdict.
BARE = QualityConfig(spike_threshold=None, dilate=0)


class TestConfigValidation:
    def test_bad_rail_level(self):
        with pytest.raises(ConfigurationError):
            QualityConfig(rail_level=0)

    def test_negative_guards(self):
        with pytest.raises(ConfigurationError):
            QualityConfig(gap_guard=-1)
        with pytest.raises(ConfigurationError):
            QualityConfig(dilate=-1)

    def test_tiny_window(self):
        with pytest.raises(ConfigurationError):
            QualityConfig(window=1)


class TestRails:
    def test_clean_record_all_good(self):
        codes = np.round(100 * np.sin(np.arange(200) / 5.0)).astype(int)
        assert quality_mask(codes).all()

    def test_empty_record(self):
        mask = quality_mask(np.array([], dtype=int))
        assert mask.size == 0

    def test_positive_rail_flagged(self):
        codes = np.zeros(50, dtype=int)
        codes[20] = 2047
        mask = quality_mask(codes, config=BARE)
        assert not mask[20]
        assert mask.sum() == 49

    def test_asymmetric_rail_levels(self):
        # Two's complement: -2008 rails where +2007 does, and the codes
        # one LSB inside either rail stay good.
        codes = np.array([2007, -2008, 2006, -2007])
        mask = quality_mask(codes, config=BARE)
        assert list(mask) == [False, False, True, True]


class TestGapGuard:
    def test_guard_window_after_gap(self):
        codes = np.zeros(100, dtype=int)
        gap = StreamGap(sample_index=40, lost_frames=1, lost_samples=8)
        mask = quality_mask(codes, gaps=(gap,), config=BARE)
        # [sample_index - 1, sample_index + gap_guard) is flagged.
        assert mask[:39].all()
        assert not mask[39:52].any()
        assert mask[52:].all()


class TestSpike:
    def test_isolated_spike_flagged(self):
        codes = np.zeros(60, dtype=int)
        codes[30] = 200
        mask = quality_mask(
            codes, config=QualityConfig(dilate=0)
        )
        assert not mask[30]
        assert mask.sum() == 59

    def test_threshold_respected(self):
        codes = np.zeros(60, dtype=int)
        codes[30] = 20  # below the 32-LSB default
        assert quality_mask(codes, config=QualityConfig(dilate=0)).all()


class TestJump:
    def test_step_flags_both_neighbours(self):
        codes = np.zeros(40, dtype=int)
        codes[20:] = 100
        cfg = QualityConfig(
            spike_threshold=None, jump_threshold=50.0, dilate=0
        )
        mask = quality_mask(codes, config=cfg)
        assert not mask[19] and not mask[20]
        assert mask[:19].all() and mask[21:].all()


class TestWindowedDetectors:
    def test_drift_flagged_backwards_over_window(self):
        n, w = 400, 32
        codes = np.zeros(n, dtype=int)
        codes[200:] = 50  # baseline walks away at sample 200
        cfg = QualityConfig(
            spike_threshold=None,
            drift_threshold=10.0,
            window=w,
            dilate=0,
        )
        mask = quality_mask(codes, config=cfg)
        assert not mask[200:].any()  # the drifted stretch is flagged
        # Backward whole-window flagging reaches at most w-1 before the
        # first deviating window's end; the early record stays good.
        assert mask[: 200 - w].all()

    def test_flatline_flagged(self):
        rng = np.random.default_rng(0)
        codes = np.round(
            30 * np.sin(np.arange(400) / 3.0) + rng.normal(0, 2, 400)
        ).astype(int)
        codes[150:250] = codes[150]  # stuck stretch
        cfg = QualityConfig(
            spike_threshold=None,
            flat_threshold=1.0,
            window=32,
            dilate=0,
        )
        mask = quality_mask(codes, config=cfg)
        assert not mask[160:240].any()
        assert mask[:100].all() and mask[300:].all()

    def test_windowed_detectors_default_off(self):
        # A legitimately quiet record must not be flagged by default.
        codes = np.zeros(400, dtype=int)
        assert quality_mask(codes).all()


class TestDilation:
    def test_dilation_radius(self):
        codes = np.zeros(60, dtype=int)
        codes[30] = 2047
        mask = quality_mask(
            codes, config=QualityConfig(spike_threshold=None, dilate=4)
        )
        assert not mask[26:35].any()
        assert mask[:26].all() and mask[35:].all()


class TestTimelineQuality:
    def test_expansion_marks_lost_positions_bad(self):
        received = np.array([True, False, True])
        valid = np.array([True, True, False, False, True])
        timeline = timeline_quality(received, valid)
        assert list(timeline) == [True, False, False, False, True]

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            timeline_quality(
                np.array([True, True]),
                np.array([True, False, False]),
            )
