"""Fault schedules and per-layer application: deterministic, chunk-invariant."""

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.daq.usb import FrameDecoder, FrameEncoder
from repro.errors import ConfigurationError
from repro.faults import FAULT_KINDS, KIND_LAYERS, FaultInjector, FaultSpec


def bound_injector(specs, seed=7, horizon_s=2.0):
    injector = FaultInjector(specs, seed=seed, horizon_s=horizon_s)
    injector.bind(ReadoutChain())
    return injector


class TestSpecValidation:
    def test_every_kind_has_a_layer(self):
        assert set(FAULT_KINDS) == set(KIND_LAYERS)
        assert set(KIND_LAYERS.values()) == {"array", "sdm", "fpga", "usb"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("cosmic_ray", rate_hz=1.0)

    def test_needs_rate_or_start(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("frame_drop")

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("frame_drop", rate_hz=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("element_dropout", start_s=0.1, duration_s=0.0)

    def test_word_mask_must_be_at_least_one(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("word_corruption", start_s=0.1, magnitude=0.0)

    def test_truncation_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("frame_truncation", start_s=0.1, magnitude=1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec("frame_truncation", start_s=0.1, magnitude=0.0)


class TestScheduling:
    def test_same_seed_same_schedule(self):
        specs = [FaultSpec("frame_drop", rate_hz=3.0)]
        a = FaultInjector(specs, seed=42, horizon_s=8.0)
        b = FaultInjector(specs, seed=42, horizon_s=8.0)
        assert a.events == b.events

    def test_different_seed_different_schedule(self):
        specs = [FaultSpec("frame_drop", rate_hz=3.0)]
        a = FaultInjector(specs, seed=1, horizon_s=8.0)
        b = FaultInjector(specs, seed=2, horizon_s=8.0)
        assert a.events != b.events

    def test_spec_schedules_are_independent(self):
        """Adding a spec must not perturb another spec's events."""
        drop = FaultSpec("frame_drop", rate_hz=2.0)
        alone = FaultInjector([drop], seed=9, horizon_s=8.0)
        paired = FaultInjector(
            [drop, FaultSpec("word_corruption", rate_hz=2.0)],
            seed=9,
            horizon_s=8.0,
        )
        alone_drops = [e for e in alone.events if e.spec_index == 0]
        paired_drops = [e for e in paired.events if e.spec_index == 0]
        assert alone_drops == paired_drops

    def test_explicit_start_pins_one_event(self):
        injector = FaultInjector(
            [FaultSpec("element_dropout", start_s=0.5, duration_s=0.1)],
            seed=0,
        )
        assert len(injector.events) == 1
        assert injector.events[0].start_s == 0.5

    def test_events_sorted_by_time(self):
        injector = FaultInjector(
            [FaultSpec("frame_drop", rate_hz=5.0)], seed=3, horizon_s=8.0
        )
        starts = [e.start_s for e in injector.events]
        assert starts == sorted(starts)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector([], horizon_s=0.0)

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(["frame_drop"])  # type: ignore[list-item]


class TestArrayLayer:
    def field(self, n, n_elements=4):
        t = np.arange(n, dtype=float)
        return 10_000.0 + 1_000.0 * np.sin(
            2 * np.pi * t[:, None] / 500.0 + np.arange(n_elements)[None, :]
        )

    def test_unbound_apply_rejected(self):
        injector = FaultInjector(
            [FaultSpec("element_dropout", start_s=0.0, duration_s=0.1)]
        )
        with pytest.raises(ConfigurationError):
            injector.apply_array(self.field(10))

    def test_dropout_zeroes_the_window(self):
        injector = bound_injector(
            [FaultSpec("element_dropout", start_s=0.0, duration_s=1e-3)]
        )
        fs = 128_000
        out = injector.apply_array(self.field(fs // 100))
        assert np.all(out[:128] == 0.0)
        assert np.all(out[128:] != 0.0)
        assert injector.events_applied == 1

    def test_stiction_freezes_event_start_row(self):
        injector = bound_injector(
            [FaultSpec("element_stiction", start_s=0.0, duration_s=1e-3)]
        )
        field = self.field(1280)
        out = injector.apply_array(field)
        assert np.all(out[:128] == field[0])
        assert np.array_equal(out[128:], field[128:])

    def test_drift_ramps_and_clamps(self):
        chain = ReadoutChain()
        injector = FaultInjector(
            [
                FaultSpec(
                    "capacitance_drift",
                    start_s=0.0,
                    duration_s=0.01,
                    magnitude=1e8,  # absurd Pa/s: must hit the clamp
                )
            ]
        )
        injector.bind(chain)
        field = self.field(1280)
        out = injector.apply_array(field)
        hi = chain.chip.array.sensor.pressure_range_pa[1]
        assert out[1, 0] > field[1, 0]  # ramping up
        assert out[:1280].max() <= hi  # never past the membrane's range

    def test_input_chunk_not_mutated(self):
        injector = bound_injector(
            [FaultSpec("element_dropout", start_s=0.0, duration_s=1e-3)]
        )
        field = self.field(256)
        kept = field.copy()
        injector.apply_array(field)
        assert np.array_equal(field, kept)

    def test_chunked_equals_batch(self):
        specs = [
            FaultSpec("element_dropout", start_s=2e-3, duration_s=1e-3),
            FaultSpec("element_stiction", start_s=5e-3, duration_s=1e-3),
            FaultSpec(
                "capacitance_drift",
                start_s=8e-3,
                duration_s=2e-3,
                magnitude=5e6,
            ),
        ]
        field = self.field(1536)
        batch = bound_injector(specs).apply_array(field)
        chunked_injector = bound_injector(specs)
        chunked = np.concatenate(
            [
                chunked_injector.apply_array(chunk)
                for chunk in np.array_split(field, 11)
            ]
        )
        assert np.array_equal(batch, chunked)

    def test_reset_replays_schedule(self):
        injector = bound_injector(
            [FaultSpec("element_stiction", start_s=0.0, duration_s=1e-3)]
        )
        field = self.field(256)
        first = injector.apply_array(field)
        injector.reset()
        assert injector.events_applied == 0
        second = injector.apply_array(field)
        assert np.array_equal(first, second)


class TestWordLayer:
    def test_word_xored_at_scheduled_index(self):
        injector = bound_injector(
            [FaultSpec("word_corruption", start_s=0.005, magnitude=1024)]
        )
        codes = np.arange(20, dtype=np.int64)
        out = injector.apply_words(codes)
        word = int(round(0.005 * 1000))  # 1 kS/s output words
        assert out[word] == codes[word] ^ 1024
        untouched = np.delete(np.arange(20), word)
        assert np.array_equal(out[untouched], codes[untouched])

    def test_word_position_counts_across_chunks(self):
        injector = bound_injector(
            [FaultSpec("word_corruption", start_s=0.010, magnitude=1)]
        )
        first = injector.apply_words(np.zeros(6, dtype=np.int64))
        second = injector.apply_words(np.zeros(6, dtype=np.int64))
        assert np.array_equal(first, np.zeros(6))
        assert second[10 - 6] == 1
        assert injector.events_applied == 1


class TestFrameLayer:
    def payload(self, n_frames=4, spf=8):
        enc = FrameEncoder(samples_per_frame=spf)
        return enc.push(
            np.arange(spf * n_frames, dtype=np.int16), element=0
        )

    def spec_at_frame(self, kind, frame, **kwargs):
        # Frame index -> start time: the injector maps times to frame
        # indices with the bound chain's 64-sample frames, regardless of
        # how large the frames walked at apply time actually are.
        return FaultSpec(kind, start_s=frame * 64 / 1000.0, **kwargs)

    def test_frame_drop_removes_exactly_one_frame(self):
        injector = bound_injector([self.spec_at_frame("frame_drop", 1)])
        out = injector.apply_payload(self.payload())
        frames = FrameDecoder().feed(out)
        assert [f.sequence for f in frames] == [0, 2, 3]

    def test_truncation_shortens_the_frame(self):
        injector = bound_injector(
            [self.spec_at_frame("frame_truncation", 1, magnitude=0.5)]
        )
        clean = self.payload()
        out = injector.apply_payload(clean)
        # 25-byte frame halved: int(25 * 0.5) = 12 bytes kept, 13 removed.
        assert len(out) == len(clean) - (9 + 16 - (9 + 16) // 2)

    def test_bitflip_changes_exactly_one_bit(self):
        injector = bound_injector([self.spec_at_frame("frame_bitflip", 2)])
        clean = self.payload()
        out = injector.apply_payload(clean)
        assert len(out) == len(clean)
        diff = [a ^ b for a, b in zip(clean, out)]
        flipped = [d for d in diff if d]
        assert len(flipped) == 1
        assert bin(flipped[0]).count("1") == 1

    def test_empty_payload_passthrough(self):
        injector = bound_injector([self.spec_at_frame("frame_drop", 0)])
        assert injector.apply_payload(b"") == b""

    def test_frame_position_counts_across_payloads(self):
        injector = bound_injector([self.spec_at_frame("frame_drop", 3)])
        first = injector.apply_payload(self.payload(2))
        second = injector.apply_payload(self.payload(2))
        assert len(first) == len(self.payload(2))
        assert len(second) < len(self.payload(2))
        assert injector.events_applied == 1


class TestLinkBinding:
    """bind_link: frame-indexed usb faults with no chain in sight."""

    @staticmethod
    def wire_sequences(payload):
        """Frame sequence numbers in wire order (reorder-visible —
        FrameDecoder would drop a late frame as stale)."""
        from repro.gateway.protocol import frame_sequence, split_frames

        return [frame_sequence(f) for f in split_frames(payload)]

    def payload(self, n_frames=4, spf=8, encoder=None):
        enc = encoder or FrameEncoder(samples_per_frame=spf)
        start = enc.frames_emitted * spf
        return enc.push(
            np.arange(start, start + spf * n_frames, dtype=np.int16),
            element=0,
        )

    def link_injector(self, kind, frame, fps=50.0, **kwargs):
        # With bind_link an event at start_s lands on frame
        # int(start_s * fps) — pick start_s dead-centre of the frame.
        spec = FaultSpec(kind, start_s=(frame + 0.5) / fps, **kwargs)
        injector = FaultInjector([spec], seed=0)
        injector.bind_link(fps)
        return injector

    def test_event_lands_on_the_indexed_frame(self):
        injector = self.link_injector("frame_drop", 2)
        out = injector.apply_payload(self.payload())
        frames = FrameDecoder().feed(out)
        assert [f.sequence for f in frames] == [0, 1, 3]

    def test_rejects_non_usb_specs(self):
        injector = FaultInjector(
            [FaultSpec("element_dropout", start_s=0.0)]
        )
        with pytest.raises(ConfigurationError):
            injector.bind_link(50.0)

    def test_rejects_nonpositive_frame_rate(self):
        injector = FaultInjector([FaultSpec("frame_drop", start_s=0.0)])
        with pytest.raises(ConfigurationError):
            injector.bind_link(0.0)

    def test_unbound_apply_still_raises(self):
        injector = FaultInjector([FaultSpec("frame_drop", start_s=0.0)])
        with pytest.raises(ConfigurationError):
            injector.apply_payload(b"\x00")

    def test_reorder_swaps_with_the_next_frame(self):
        injector = self.link_injector("frame_reorder", 1)
        out = injector.apply_payload(self.payload())
        assert self.wire_sequences(out) == [0, 2, 1, 3]
        assert injector.events_applied == 1
        # The receiver books the swap as one lost gap + one stale late
        # frame — counted, never silent.
        decoder = FrameDecoder()
        decoder.feed(out)
        assert decoder.lost_frames == 1
        assert decoder.stale_frames == 1

    def test_reorder_holds_across_payload_boundary(self):
        injector = self.link_injector("frame_reorder", 1)
        enc = FrameEncoder(samples_per_frame=8)
        first = injector.apply_payload(self.payload(2, encoder=enc))
        # Frame 1 is held: only frame 0 went out.
        assert self.wire_sequences(first) == [0]
        second = injector.apply_payload(self.payload(2, encoder=enc))
        # It rides out right behind the next transmitted frame.
        assert self.wire_sequences(second) == [2, 1, 3]

    def test_reorder_at_stream_tail_is_withheld(self):
        injector = self.link_injector("frame_reorder", 3)
        out = injector.apply_payload(self.payload(4))
        # No follow-up frame ever flushes the held one: tail loss, which
        # the receiver's conservation surfaces as an unaccounted frame.
        assert self.wire_sequences(out) == [0, 1, 2]

    def test_reset_clears_reorder_pending(self):
        injector = self.link_injector("frame_reorder", 1)
        injector.apply_payload(self.payload(2))
        injector.reset()
        out = injector.apply_payload(self.payload(4))
        # The schedule replays from frame 0; nothing stale leaks in.
        assert self.wire_sequences(out) == [0, 2, 1, 3]


class TestAppliedLog:
    def test_applied_windows_report(self):
        injector = bound_injector(
            [FaultSpec("element_dropout", start_s=0.0, duration_s=1e-3)]
        )
        injector.apply_array(np.full((256, 4), 1000.0))
        [(kind, layer, start, end)] = injector.applied_windows()
        assert kind == "element_dropout"
        assert layer == "array"
        assert start == 0.0
        assert end == pytest.approx(1e-3)

    def test_event_applied_once_across_chunks(self):
        injector = bound_injector(
            [FaultSpec("element_dropout", start_s=0.0, duration_s=2e-3)]
        )
        injector.apply_array(np.full((128, 4), 1000.0))
        injector.apply_array(np.full((128, 4), 1000.0))
        assert injector.events_applied == 1
