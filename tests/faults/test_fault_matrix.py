"""Fault-matrix harness: degradation contract, reproducibility, fan-out."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fault_matrix import (
    FaultMatrixResult,
    run_fault_matrix,
)
from repro.faults import FAULT_KINDS


@pytest.fixture(scope="module")
def matrix() -> FaultMatrixResult:
    """One full-kind run shared by the contract assertions."""
    return run_fault_matrix(duration_s=2.0, jobs=1)


class TestDegradationContract:
    def test_every_cell_injects_events(self, matrix):
        assert len(matrix.cells) == len(FAULT_KINDS)
        for cell in matrix.cells:
            assert cell.events_injected >= 1, cell.kind

    def test_every_event_detected(self, matrix):
        for cell in matrix.cells:
            assert cell.events_detected >= cell.events_injected, cell.kind

    def test_zero_silent_corruption(self, matrix):
        assert matrix.silent_corruption_total == 0
        for cell in matrix.cells:
            assert cell.silent_corruption_samples == 0, cell.kind

    def test_every_record_survives(self, matrix):
        assert matrix.all_survived
        for cell in matrix.cells:
            assert cell.words > 0, cell.kind

    def test_faults_actually_corrupt_or_lose_data(self, matrix):
        """The matrix must not pass vacuously: each cell either corrupts
        received samples (all flagged) or destroys frames (all
        accounted)."""
        for cell in matrix.cells:
            damage = (
                cell.corrupted_samples
                + cell.lost_samples
                + cell.frames_unaccounted
            )
            assert damage > 0, cell.kind
            assert (
                cell.flagged_corrupted_samples == cell.corrupted_samples
            ), cell.kind

    def test_contract_summary(self, matrix):
        assert matrix.contract_holds
        assert "contract holds" in matrix.describe()

    def test_sdm_cells_retrigger_autozero(self, matrix):
        for cell in matrix.cells:
            if cell.kind in ("sdm_saturation", "stuck_comparator"):
                assert cell.autozero_retriggers >= 1, cell.kind


class TestReproducibility:
    KINDS = ("element_dropout", "frame_drop")

    def test_jobs_do_not_change_results(self):
        a = run_fault_matrix(kinds=self.KINDS, duration_s=1.0, jobs=1)
        b = run_fault_matrix(kinds=self.KINDS, duration_s=1.0, jobs=2)
        assert a.cells == b.cells

    def test_same_seed_same_matrix(self):
        a = run_fault_matrix(kinds=self.KINDS, duration_s=1.0, seed=5)
        b = run_fault_matrix(kinds=self.KINDS, duration_s=1.0, seed=5)
        assert a.cells == b.cells

    def test_seed_changes_schedules(self):
        a = run_fault_matrix(kinds=self.KINDS, duration_s=1.0, seed=5)
        b = run_fault_matrix(kinds=self.KINDS, duration_s=1.0, seed=6)
        assert [c.seed for c in a.cells] != [c.seed for c in b.cells]


class TestHarnessSurface:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fault_matrix(kinds=("gremlin",), duration_s=1.0)

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fault_matrix(duration_s=0.0)

    def test_rows_formats(self, matrix):
        rows = matrix.rows()
        assert all(len(r) == 3 for r in rows)
        table = matrix.matrix_rows()
        assert len(table) == len(matrix.cells) + 1  # header row
        assert table[0][0] == "kind"
        widths = {len(r) for r in table}
        assert len(widths) == 1  # rectangular

    def test_cells_carry_numpy_free_scalars(self, matrix):
        """Results cross process boundaries; keep them plain."""
        cell = matrix.cells[0]
        assert isinstance(cell.events_injected, int)
        assert isinstance(cell.quality_fraction, float)
        assert isinstance(cell.survived, bool)
