"""Batched acquisition correctness: bit-identity, rails, validation.

The contract under test: a :class:`~repro.batch.BatchAcquisitionSession`
over ``B`` chains produces, per lane, exactly the codes and telemetry a
single :class:`~repro.core.session.AcquisitionSession` produces for the
same input — for any batch size, any chunk split, kernel or fallback.
"""

import numpy as np
import pytest

from repro.batch import BatchAcquisitionSession, BatchChainEngine
from repro.core.chain import ReadoutChain
from repro.core.session import AcquisitionSession
from repro.errors import ConfigurationError
from repro.params import DecimationParams, NonidealityParams, SystemParams

TELEMETRY_COUNTERS = (
    "mod_samples_in",
    "bits_out",
    "clipped_samples",
    "words_filtered",
    "words_suppressed",
    "words_delivered",
    "frames_framed",
    "frames_decoded",
)


def make_chain(seed: int, ideal: bool = True) -> ReadoutChain:
    params = SystemParams()
    if ideal:
        params = params.replace(nonideality=NonidealityParams.ideal())
    return ReadoutChain(params, rng=np.random.default_rng(seed))


def pressure_field(n: int, n_elements: int, seed: int = 0) -> np.ndarray:
    t = np.arange(n) / 128e3
    p = 2200.0 * np.sin(2 * np.pi * (1.1 + 0.1 * seed) * t) + 1200.0
    return np.repeat(p[:, None], n_elements, axis=1)


def run_single(seed, field, splits, ideal=True, word_hook=None):
    chain = make_chain(seed, ideal=ideal)
    session = AcquisitionSession(chain, element=1)
    if word_hook is not None:
        chain.fpga.word_hook = word_hook
    off = 0
    for n in splits:
        session.feed_pressure(field[off : off + n])
        off += n
    session.feed_pressure(field[off:])
    session.finish()
    return session


class TestBitIdentity:
    @pytest.mark.parametrize("ideal", [True, False])
    def test_batched_equals_singles(self, ideal):
        """Same codes and counters as B independent sessions."""
        B, n = 3, 1_920
        chains = [make_chain(70 + l, ideal=ideal) for l in range(B)]
        n_el = chains[0].chip.mux.array.n_elements
        fields = [pressure_field(n, n_el, seed=l) for l in range(B)]
        sess = BatchAcquisitionSession(chains, element=1)
        for lo, hi in ((0, 511), (511, 512), (512, n)):
            sess.feed_pressure([f[lo:hi] for f in fields])
        sess.finish()
        for l in range(B):
            ref = run_single(70 + l, fields[l], (640, 640), ideal=ideal)
            assert np.array_equal(sess.codes(l), ref.recording().codes)
            lane = sess.telemetries[l]
            lane.reconcile()
            for counter in TELEMETRY_COUNTERS:
                assert getattr(lane, counter) == getattr(
                    ref.telemetry, counter
                ), counter

    def test_kernel_matches_fallback(self):
        """force_python engine and the kernel agree bit-for-bit."""
        B, n = 2, 1_280
        n_el = make_chain(0).chip.mux.array.n_elements
        fields = [pressure_field(n, n_el, seed=l) for l in range(B)]
        outs = []
        for force in (False, True):
            chains = [make_chain(40 + l) for l in range(B)]
            sess = BatchAcquisitionSession(
                chains, element=1, force_python=force
            )
            sess.feed_pressure(fields)
            sess.finish()
            outs.append([sess.codes(l) for l in range(B)])
        for got, want in zip(*outs):
            assert np.array_equal(got, want)

    def test_voltage_path(self):
        """Batched voltage feed equals per-lane single sessions."""
        B, n = 2, 1_280
        t = np.arange(n) / 128e3
        u = np.stack(
            [0.3 * np.sin(2 * np.pi * (50 + 10 * l) * t) for l in range(B)],
            axis=1,
        )
        chains = [make_chain(20 + l) for l in range(B)]
        sess = BatchAcquisitionSession(chains)
        sess.feed_voltage(u[:640])
        sess.feed_voltage(u[640:])
        sess.finish()
        for l in range(B):
            chain = make_chain(20 + l)
            ref = AcquisitionSession(chain)
            ref.feed_voltage(u[:, l])
            ref.finish()
            assert np.array_equal(sess.codes(l), ref.recording().codes)

    def test_lane_hands_back_to_single_session(self):
        """A lane resumes bit-exactly on the single path mid-stream."""
        n = 1_536
        n_el = make_chain(0).chip.mux.array.n_elements
        field = pressure_field(n, n_el)
        ref = run_single(9, field, (n // 2,))

        chain = make_chain(9)
        sess = BatchAcquisitionSession([chain], element=1)
        first = sess.feed_pressure([field[: n // 2]])[0]
        # Hand the chain back: the chain objects hold all cascade state.
        single = AcquisitionSession(chain, element=1)
        single.feed_pressure(field[n // 2 :])
        single.finish()
        combined = np.concatenate([first, single.recording().codes])
        assert np.array_equal(combined, ref.recording().codes)


class TestWordRails:
    def test_word_hook_saturates_to_i16_not_wrap(self):
        """Hook output beyond the i16 rails clamps, exactly like the FPGA."""
        n = 1_280
        n_el = make_chain(0).chip.mux.array.n_elements
        field = pressure_field(n, n_el)

        def hot_hook(codes):
            return codes + 40_000

        chain = make_chain(5)
        chain.fpga.word_hook = hot_hook
        sess = BatchAcquisitionSession([chain], element=1)
        sess.feed_pressure([field])
        sess.finish()
        got = sess.codes(0)
        ref = run_single(5, field, (n // 2,), word_hook=hot_hook)
        assert np.array_equal(got, ref.recording().codes)
        # 12-bit codes + 40000 all exceed the +32767 rail: saturation,
        # never two's-complement wraparound into negative territory.
        assert got.size > 0
        assert np.all(got == 32_767)


class TestValidation:
    def test_shared_chain_object_rejected(self):
        chain = make_chain(0)
        with pytest.raises(ConfigurationError, match="distinct chain"):
            BatchChainEngine([chain, chain])

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            BatchChainEngine([])

    def test_mismatched_decimation_architecture_rejected(self):
        a = make_chain(0)
        b = ReadoutChain(
            SystemParams().replace(
                nonideality=NonidealityParams.ideal(),
                decimation=DecimationParams(fir_taps=16),
            ),
            rng=np.random.default_rng(1),
        )
        with pytest.raises(ConfigurationError, match="decimation arch"):
            BatchChainEngine([a, b])

    def test_faults_rejected(self):
        with pytest.raises(ConfigurationError, match="fault injection"):
            BatchAcquisitionSession([make_chain(0)], faults=object())

    def test_mixed_feed_kinds_rejected(self):
        n_el = make_chain(0).chip.mux.array.n_elements
        sess = BatchAcquisitionSession([make_chain(0)], element=1)
        sess.feed_pressure([pressure_field(256, n_el)])
        with pytest.raises(ConfigurationError, match="mix"):
            sess.feed_voltage(np.zeros((256, 1)))

    def test_feed_after_finish_rejected(self):
        sess = BatchAcquisitionSession([make_chain(0)], element=1)
        sess.finish()
        with pytest.raises(ConfigurationError, match="finished"):
            sess.feed_voltage(np.zeros((8, 1)))

    def test_lane_count_and_shape_checked(self):
        n_el = make_chain(0).chip.mux.array.n_elements
        sess = BatchAcquisitionSession(
            [make_chain(0), make_chain(1)], element=1
        )
        with pytest.raises(ConfigurationError, match="expected 2"):
            sess.feed_pressure([pressure_field(64, n_el)])
        with pytest.raises(ConfigurationError, match="same number"):
            sess.feed_pressure(
                [pressure_field(64, n_el), pressure_field(32, n_el)]
            )
        with pytest.raises(ConfigurationError, match="n_samples, n_lanes"):
            sess.feed_voltage(np.zeros(64))

    def test_out_of_range_pressure_raises_like_single(self):
        """The fused front end defers to the exact per-lane error."""
        from repro.errors import SimulationError

        n_el = make_chain(0).chip.mux.array.n_elements
        field = pressure_field(64, n_el)
        field[10, :] = 1e9  # far beyond the membrane's fitted range
        sess = BatchAcquisitionSession([make_chain(0)], element=1)
        with pytest.raises(SimulationError):
            sess.feed_pressure([field])
