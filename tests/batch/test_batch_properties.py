"""Property: batched == N independent single sessions, sample for sample.

Hypothesis drives the batch size, the (uneven) chunk split, and the
per-lane stimulus; every draw must reproduce the single-session codes
and reconcile per-lane telemetry exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchAcquisitionSession
from repro.core.chain import ReadoutChain
from repro.core.session import AcquisitionSession
from repro.params import NonidealityParams, SystemParams


def make_chain(seed: int) -> ReadoutChain:
    params = SystemParams().replace(nonideality=NonidealityParams.ideal())
    return ReadoutChain(params, rng=np.random.default_rng(seed))


def lane_voltage(n: int, lane: int) -> np.ndarray:
    t = np.arange(n) / 128e3
    return 0.25 * np.sin(2 * np.pi * (40.0 + 17.0 * lane) * t) + 0.01 * lane


@st.composite
def batch_cases(draw):
    lanes = draw(st.integers(min_value=1, max_value=3))
    n_chunks = draw(st.integers(min_value=1, max_value=4))
    chunks = [
        draw(st.integers(min_value=1, max_value=700))
        for _ in range(n_chunks)
    ]
    return lanes, chunks


class TestBatchedEqualsSingles:
    @given(batch_cases())
    @settings(max_examples=12, deadline=None)
    def test_codes_and_telemetry_match(self, case):
        lanes, chunks = case
        n = sum(chunks)
        u = np.stack([lane_voltage(n, l) for l in range(lanes)], axis=1)

        sess = BatchAcquisitionSession([make_chain(l) for l in range(lanes)])
        off = 0
        for c in chunks:
            sess.feed_voltage(u[off : off + c])
            off += c
        sess.finish()

        for l in range(lanes):
            ref = AcquisitionSession(make_chain(l))
            ref.feed_voltage(u[:, l])
            ref.finish()
            assert np.array_equal(sess.codes(l), ref.recording().codes)
            lane_tm = sess.telemetries[l]
            lane_tm.reconcile()
            assert lane_tm.mod_samples_in == ref.telemetry.mod_samples_in
            assert (
                lane_tm.words_delivered == ref.telemetry.words_delivered
            )
            assert lane_tm.frames_decoded == ref.telemetry.frames_decoded
