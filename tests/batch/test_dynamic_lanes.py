"""Dynamic lane membership: devices join and leave a running batch.

The gateway-facing lifecycle the batch plane needs: a fleet is already
streaming when a new device connects (attach at a shared decimation
boundary) or an existing one drops (detach at any chunk boundary). The
contract is the same bit-identity the static batch guarantees — every
lane's codes match a solo :class:`~repro.core.session.AcquisitionSession`
fed the same samples over the lane's membership window, and a detached
chain resumes solo processing (or rejoins) bit-exactly.
"""

import numpy as np
import pytest

from repro.batch import BatchAcquisitionSession, BatchChainEngine
from repro.core.chain import ReadoutChain
from repro.core.session import AcquisitionSession
from repro.errors import ConfigurationError
from repro.params import NonidealityParams, SystemParams


def make_chain(seed: int) -> ReadoutChain:
    params = SystemParams().replace(nonideality=NonidealityParams.ideal())
    return ReadoutChain(params, rng=np.random.default_rng(seed))


def lane_voltage(n: int, lane: int, offset: int = 0) -> np.ndarray:
    t = (np.arange(n) + offset) / 128e3
    return 0.25 * np.sin(2 * np.pi * (40.0 + 17.0 * lane) * t) + 0.01 * lane


def solo_codes(lane: int, u: np.ndarray) -> np.ndarray:
    ref = AcquisitionSession(make_chain(lane))
    ref.feed_voltage(u)
    ref.finish()
    return ref.recording().codes


class TestAttach:
    def test_join_mid_stream_is_bit_identical(self):
        D = make_chain(0).fpga.filter.params.total_decimation
        n1, n2 = 4 * D, 3 * D
        sess = BatchAcquisitionSession([make_chain(0), make_chain(1)])
        sess.feed_voltage(
            np.stack([lane_voltage(n1, l) for l in range(2)], axis=1)
        )
        # The batch sits at a decimation boundary: a fresh chain joins.
        lane = sess.attach_lane(make_chain(2))
        assert lane == 2
        u2 = np.stack(
            [lane_voltage(n2, 0, n1), lane_voltage(n2, 1, n1),
             lane_voltage(n2, 2)],
            axis=1,
        )
        sess.feed_voltage(u2)
        sess.finish()

        for l in range(2):
            full = np.concatenate(
                [lane_voltage(n1, l), lane_voltage(n2, l, n1)]
            )
            assert np.array_equal(sess.codes(l), solo_codes(l, full))
        assert np.array_equal(sess.codes(2), solo_codes(2, lane_voltage(n2, 2)))
        for tm in sess.telemetries:
            tm.reconcile()

    def test_join_off_phase_is_rejected(self):
        sess = BatchAcquisitionSession([make_chain(0)])
        D = sess.chains[0].fpga.filter.params.total_decimation
        sess.feed_voltage(lane_voltage(D + 1, 0).reshape(-1, 1))
        with pytest.raises(ConfigurationError, match="decimation phase"):
            sess.attach_lane(make_chain(1))

    def test_duplicate_chain_is_rejected(self):
        chain = make_chain(0)
        engine = BatchChainEngine([chain])
        with pytest.raises(ConfigurationError, match="already a lane"):
            engine.attach_lane(chain)


class TestDetach:
    def test_detached_chain_continues_solo_bit_exactly(self):
        D = make_chain(0).fpga.filter.params.total_decimation
        n1, n2 = 5 * D, 4 * D
        sess = BatchAcquisitionSession(
            [make_chain(0), make_chain(1), make_chain(2)]
        )
        sess.feed_voltage(
            np.stack([lane_voltage(n1, l) for l in range(3)], axis=1)
        )
        chain, rec = sess.detach_lane(1)
        # The departed lane's books are closed at the boundary...
        assert np.array_equal(rec.codes, solo_codes(1, lane_voltage(n1, 1)))
        # ...and its chain keeps running solo, bit-exactly.
        solo = AcquisitionSession(chain)
        solo.feed_voltage(lane_voltage(n2, 1, n1))
        solo.finish()
        full = np.concatenate(
            [lane_voltage(n1, 1), lane_voltage(n2, 1, n1)]
        )
        assert np.array_equal(
            np.concatenate([rec.codes, solo.recording().codes]),
            solo_codes(1, full),
        )
        # The survivors never notice.
        sess.feed_voltage(
            np.stack(
                [lane_voltage(n2, 0, n1), lane_voltage(n2, 2, n1)], axis=1
            )
        )
        sess.finish()
        for lane, l in ((0, 0), (1, 2)):
            full = np.concatenate(
                [lane_voltage(n1, l), lane_voltage(n2, l, n1)]
            )
            assert np.array_equal(sess.codes(lane), solo_codes(l, full))

    def test_rejoin_after_detach(self):
        D = make_chain(0).fpga.filter.params.total_decimation
        n = 3 * D
        sess = BatchAcquisitionSession([make_chain(0), make_chain(1)])
        sess.feed_voltage(
            np.stack([lane_voltage(n, l) for l in range(2)], axis=1)
        )
        chain, _ = sess.detach_lane(1)
        sess.feed_voltage(lane_voltage(n, 0, n).reshape(-1, 1))
        lane = sess.attach_lane(chain)
        sess.feed_voltage(
            np.stack(
                [lane_voltage(n, 0, 2 * n), lane_voltage(n, 1, n)], axis=1
            )
        )
        sess.finish()
        full0 = np.concatenate(
            [lane_voltage(n, 0), lane_voltage(n, 0, n),
             lane_voltage(n, 0, 2 * n)]
        )
        assert np.array_equal(sess.codes(0), solo_codes(0, full0))
        # The rejoined lane's second stint continues its own cascade
        # state, so compare against one solo run over both stints.
        ref = AcquisitionSession(make_chain(1))
        ref.feed_voltage(lane_voltage(n, 1))
        ref.feed_voltage(lane_voltage(n, 1, n))
        ref.finish()
        whole = ref.recording().codes
        stint2 = sess.codes(lane)
        assert np.array_equal(stint2, whole[len(whole) - len(stint2):])

    def test_last_lane_cannot_detach(self):
        engine = BatchChainEngine([make_chain(0)])
        with pytest.raises(ConfigurationError, match="last lane"):
            engine.detach_lane(0)

    def test_bad_lane_index(self):
        engine = BatchChainEngine([make_chain(0), make_chain(1)])
        with pytest.raises(ConfigurationError, match="no lane"):
            engine.detach_lane(5)
