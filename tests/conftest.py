"""Shared fixtures: paper-default components built once per session.

Heavy objects (membrane sensor with its Chebyshev fit, readout chains)
are session-scoped; tests must not mutate them. Tests that need mutable
state build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mems.membrane import MembraneSensor
from repro.params import SystemParams, paper_defaults


@pytest.fixture(scope="session")
def params() -> SystemParams:
    return paper_defaults()


@pytest.fixture(scope="session")
def sensor() -> MembraneSensor:
    """Shared paper-default membrane (construction costs ~100 ms)."""
    return MembraneSensor()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
