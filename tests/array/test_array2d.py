"""Sensor array construction, mismatch, evaluation."""

import numpy as np
import pytest

from repro.array.array2d import SensorArray
from repro.errors import ConfigurationError
from repro.params import ArrayParams


@pytest.fixture(scope="module")
def array() -> SensorArray:
    return SensorArray()


class TestConstruction:
    def test_paper_default_is_2x2(self, array):
        assert len(array) == 4
        assert array.params.rows == array.params.cols == 2

    def test_elements_have_grid_coords(self, array):
        coords = {(e.row, e.col) for e in array}
        assert coords == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_mismatch_reproducible(self):
        a = SensorArray(rng=np.random.default_rng(10))
        b = SensorArray(rng=np.random.default_rng(10))
        assert a.rest_capacitances_f() == pytest.approx(
            b.rest_capacitances_f()
        )

    def test_mismatch_spread_matches_sigma(self):
        params = ArrayParams(rows=8, cols=8, capacitance_mismatch_sigma=0.01)
        big = SensorArray(params, rng=np.random.default_rng(4))
        rest = big.rest_capacitances_f()
        rel_spread = rest.std() / rest.mean()
        assert rel_spread == pytest.approx(0.01, rel=0.5)

    def test_zero_mismatch(self):
        params = ArrayParams(capacitance_mismatch_sigma=0.0)
        arr = SensorArray(params)
        rest = arr.rest_capacitances_f()
        assert rest.std() == pytest.approx(0.0, abs=1e-25)
        assert arr.reference_cap_f == pytest.approx(rest[0])


class TestReference:
    def test_reference_near_rest(self, array):
        rest = array.rest_capacitances_f().mean()
        assert array.reference_cap_f == pytest.approx(rest, rel=0.02)

    def test_offsets_vs_reference_small(self, array):
        offs = array.offsets_vs_reference_f()
        assert np.max(np.abs(offs)) < 0.02 * array.reference_cap_f


class TestEvaluation:
    def test_single_instant(self, array):
        caps = array.capacitances_f(np.zeros(4))
        assert caps.shape == (4,)
        assert caps == pytest.approx(array.rest_capacitances_f())

    def test_time_series(self, array):
        pressures = np.zeros((10, 4))
        pressures[:, 2] = np.linspace(0, 5000, 10)
        caps = array.capacitances_f(pressures)
        assert caps.shape == (10, 4)
        # Only element 2 responds.
        assert np.all(np.diff(caps[:, 2]) > 0)
        assert np.allclose(caps[:, 0], caps[0, 0])

    def test_wrong_width_rejected(self, array):
        with pytest.raises(ConfigurationError, match="last axis"):
            array.capacitances_f(np.zeros((10, 3)))

    def test_describe(self, array):
        assert "2x2" in array.describe()


class TestVectorizedEvaluation:
    def test_vectorized_matches_per_element_loop_bitwise(self):
        """The one-pass interpolant evaluation must equal the per-element
        loop exactly — the fused scan's bit-identity rests on it."""
        arr = SensorArray(ArrayParams(rows=3, cols=5))
        rng = np.random.default_rng(11)
        pressures = 3000.0 * rng.standard_normal((40, arr.n_elements))
        fast = arr.capacitances_f(pressures)
        loop = np.column_stack(
            [
                arr.elements[k].capacitance_f(pressures[:, k])
                for k in range(arr.n_elements)
            ]
        )
        assert np.array_equal(fast, loop)

    def test_transfer_vectors_reproduce_elements(self):
        arr = SensorArray()
        scales, offsets = arr.vectorized_transfer()
        for k, element in enumerate(arr.elements):
            assert scales[k] == element.capacitance_scale
            assert offsets[k] == element.offset_cap_f

    def test_exotic_element_disables_fast_path(self):
        from repro.mems.membrane import MembraneSensor

        arr = SensorArray()
        # Substitute a private sensor model on one element: the shared-
        # transfer shortcut no longer applies and must report so.
        private = MembraneSensor(arr.params.membrane)
        arr.elements[1] = type(arr.elements[1])(
            index=1,
            row=0,
            col=1,
            center_m=arr.elements[1].center_m,
            sensor=private,
            capacitance_scale=1.0,
        )
        assert arr.vectorized_transfer() is None
        caps = arr.capacitances_f(np.zeros((3, 4)))  # loop fallback works
        assert caps.shape == (3, 4)

    def test_non_square_layout(self):
        arr = SensorArray(ArrayParams(rows=2, cols=3))
        assert arr.n_elements == 6
        assert {(e.row, e.col) for e in arr} == {
            (r, c) for r in range(2) for c in range(3)
        }
        caps = arr.capacitances_f(np.zeros(6))
        assert caps == pytest.approx(arr.rest_capacitances_f())
