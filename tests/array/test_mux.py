"""Analog multiplexer and settling budget."""

import numpy as np
import pytest

from repro.array.array2d import SensorArray
from repro.array.mux import AnalogMultiplexer, analyze_mux_timing
from repro.dsp.decimator import DecimationFilter
from repro.errors import ConfigurationError


@pytest.fixture()
def mux() -> AnalogMultiplexer:
    return AnalogMultiplexer(SensorArray())


class TestSelection:
    def test_default_element_zero(self, mux):
        assert mux.selected == 0

    def test_select_rowcol(self, mux):
        mux.select(1, 0)
        assert mux.selected == 2
        assert mux.selected_rowcol == (1, 0)

    def test_select_index(self, mux):
        mux.select_index(3)
        assert mux.selected_rowcol == (1, 1)

    def test_out_of_range(self, mux):
        with pytest.raises(ConfigurationError):
            mux.select_index(4)
        with pytest.raises(ConfigurationError):
            mux.select(2, 0)


class TestRouting:
    def test_routes_selected_column(self, mux):
        pressures = np.zeros((5, 4))
        pressures[:, 2] = 1000.0
        mux.select_index(2)
        routed = mux.routed_capacitance_f(pressures)
        # After the switch glitch (first sample), steady value is the
        # element-2 capacitance under 1000 Pa.
        expected = mux.array.elements[2].capacitance_f(1000.0)[0]
        assert routed[1:] == pytest.approx(expected)

    def test_charge_injection_glitch_on_switch(self, mux):
        pressures = np.zeros((5, 4))
        mux.select_index(1)
        routed = mux.routed_capacitance_f(pressures)
        assert routed[0] > routed[1]  # one-sample glitch
        # Second call without switching: no glitch.
        routed2 = mux.routed_capacitance_f(pressures)
        assert routed2[0] == pytest.approx(routed2[1])

    def test_no_glitch_when_reselecting_same(self, mux):
        pressures = np.zeros((3, 4))
        mux.routed_capacitance_f(pressures)  # clear initial state
        mux.select_index(0)  # same element: no switch
        routed = mux.routed_capacitance_f(pressures)
        assert routed[0] == pytest.approx(routed[1])

    def test_shape_validation(self, mux):
        with pytest.raises(ConfigurationError):
            mux.routed_capacitance_f(np.zeros(4))


class TestTiming:
    def test_electrical_constant_nanoseconds(self, mux):
        # 2 kOhm * ~174 fF ~ 0.35 ns
        assert mux.electrical_time_constant_s < 1e-8

    def test_filter_dominates(self, mux):
        timing = analyze_mux_timing(mux, DecimationFilter())
        assert timing.dominant == "filter"
        assert timing.electrical_settling_s < 1e-6
        assert timing.filter_flush_s > 1e-3

    def test_discarded_words_positive(self, mux):
        timing = analyze_mux_timing(mux, DecimationFilter())
        assert 1 <= timing.output_words_discarded <= 32

    def test_scan_rate_finite(self, mux):
        timing = analyze_mux_timing(mux, DecimationFilter())
        assert 10.0 < timing.max_scan_rate_hz < 1000.0

    def test_rejects_bad_resistance(self):
        with pytest.raises(ConfigurationError):
            AnalogMultiplexer(SensorArray(), switch_resistance_ohm=0.0)
