"""Analog multiplexer and settling budget."""

import numpy as np
import pytest

from repro.array.array2d import SensorArray
from repro.array.mux import AnalogMultiplexer, analyze_mux_timing
from repro.dsp.decimator import DecimationFilter
from repro.errors import ConfigurationError


@pytest.fixture()
def mux() -> AnalogMultiplexer:
    return AnalogMultiplexer(SensorArray())


class TestSelection:
    def test_default_element_zero(self, mux):
        assert mux.selected == 0

    def test_select_rowcol(self, mux):
        mux.select(1, 0)
        assert mux.selected == 2
        assert mux.selected_rowcol == (1, 0)

    def test_select_index(self, mux):
        mux.select_index(3)
        assert mux.selected_rowcol == (1, 1)

    def test_out_of_range(self, mux):
        with pytest.raises(ConfigurationError):
            mux.select_index(4)
        with pytest.raises(ConfigurationError):
            mux.select(2, 0)


class TestRouting:
    def test_routes_selected_column(self, mux):
        pressures = np.zeros((5, 4))
        pressures[:, 2] = 1000.0
        mux.select_index(2)
        routed = mux.routed_capacitance_f(pressures)
        # After the switch glitch (first sample), steady value is the
        # element-2 capacitance under 1000 Pa.
        expected = mux.array.elements[2].capacitance_f(1000.0)[0]
        assert routed[1:] == pytest.approx(expected)

    def test_charge_injection_glitch_on_switch(self, mux):
        pressures = np.zeros((5, 4))
        mux.select_index(1)
        routed = mux.routed_capacitance_f(pressures)
        assert routed[0] > routed[1]  # one-sample glitch
        # Second call without switching: no glitch.
        routed2 = mux.routed_capacitance_f(pressures)
        assert routed2[0] == pytest.approx(routed2[1])

    def test_no_glitch_when_reselecting_same(self, mux):
        pressures = np.zeros((3, 4))
        mux.routed_capacitance_f(pressures)  # clear initial state
        mux.select_index(0)  # same element: no switch
        routed = mux.routed_capacitance_f(pressures)
        assert routed[0] == pytest.approx(routed[1])

    def test_shape_validation(self, mux):
        with pytest.raises(ConfigurationError):
            mux.routed_capacitance_f(np.zeros(4))


class TestTiming:
    def test_electrical_constant_nanoseconds(self, mux):
        # 2 kOhm * ~174 fF ~ 0.35 ns
        assert mux.electrical_time_constant_s < 1e-8

    def test_filter_dominates(self, mux):
        timing = analyze_mux_timing(mux, DecimationFilter())
        assert timing.dominant == "filter"
        assert timing.electrical_settling_s < 1e-6
        assert timing.filter_flush_s > 1e-3

    def test_discarded_words_positive(self, mux):
        timing = analyze_mux_timing(mux, DecimationFilter())
        assert 1 <= timing.output_words_discarded <= 32

    def test_scan_rate_finite(self, mux):
        timing = analyze_mux_timing(mux, DecimationFilter())
        assert 10.0 < timing.max_scan_rate_hz < 1000.0

    def test_rejects_bad_resistance(self):
        with pytest.raises(ConfigurationError):
            AnalogMultiplexer(SensorArray(), switch_resistance_ohm=0.0)


class TestScanSegments:
    def _field(self, dwell, n_elements=4, seed=7):
        rng = np.random.default_rng(seed)
        return 2000.0 * rng.standard_normal((dwell * n_elements, 4))

    def test_matches_sequential_selection(self):
        """One segments call == select each element and route its dwell."""
        dwell = 6
        field = self._field(dwell)

        seq_mux = AnalogMultiplexer(SensorArray())
        sequential = []
        for k in range(4):
            seq_mux.select_index(k)
            sequential.append(
                seq_mux.routed_capacitance_f(
                    field[k * dwell : (k + 1) * dwell]
                )
            )
        sequential = np.vstack(sequential)

        idx = np.arange(4)
        windows = field.reshape(4, dwell, 4)
        segments = windows[idx, :, idx]
        got = AnalogMultiplexer(SensorArray()).scan_segments_capacitance_f(
            segments
        )
        assert np.array_equal(got, sequential)

    def test_full_field_entry_point_is_identical(self):
        dwell = 5
        field = self._field(dwell)
        full = AnalogMultiplexer(SensorArray()).scan_routed_capacitance_f(
            field, dwell
        )
        idx = np.arange(4)
        segments = field.reshape(4, dwell, 4)[idx, :, idx]
        segs = AnalogMultiplexer(SensorArray()).scan_segments_capacitance_f(
            segments
        )
        assert np.array_equal(full, segs)

    def test_injection_semantics(self, mux):
        segments = np.zeros((4, 3))
        caps = mux.scan_segments_capacitance_f(segments)
        # Element 0 was already routed: no glitch. Every later visit is
        # a real switch: one-sample glitch on its first word.
        assert caps[0, 0] == pytest.approx(caps[0, 1])
        assert np.all(caps[1:, 0] > caps[1:, 1])
        assert mux.selected == 3  # scan leaves the last element routed

    def test_injection_when_scan_starts_elsewhere(self):
        mux = AnalogMultiplexer(SensorArray())
        mux.select_index(2)
        caps = mux.scan_segments_capacitance_f(np.zeros((4, 3)))
        assert caps[0, 0] > caps[0, 1]  # visiting element 0 is a switch

    def test_validation(self, mux):
        with pytest.raises(ConfigurationError):
            mux.scan_segments_capacitance_f(np.zeros((3, 5)))
        with pytest.raises(ConfigurationError):
            mux.scan_segments_capacitance_f(np.zeros((4, 0)))
        with pytest.raises(ConfigurationError):
            mux.scan_routed_capacitance_f(np.zeros((10, 4)), 5)


class TestScanSchedule:
    def _schedule(self, **overrides):
        from repro.array.mux import ScanSchedule

        base = dict(
            rows=8,
            cols=8,
            banks=1,
            settle_words=9,
            valid_words=91,
            output_rate_hz=1000.0,
            total_decimation=128,
        )
        base.update(overrides)
        return ScanSchedule(**base)

    def test_shared_converter_timetable(self):
        schedule = self._schedule()
        assert schedule.n_elements == 64
        assert schedule.words_per_visit == 100
        assert schedule.dwell_mod_samples == 100 * 128
        assert schedule.element_dwell_s == pytest.approx(0.1)
        assert schedule.visits_per_bank == 64
        assert schedule.frame_time_s == pytest.approx(6.4)
        assert schedule.frame_rate_hz == pytest.approx(1 / 6.4)
        assert schedule.elements_per_s == pytest.approx(10.0)
        assert schedule.efficiency == pytest.approx(0.91)

    def test_per_column_banks_divide_frame_time(self):
        shared = self._schedule()
        banked = self._schedule(banks=8)
        assert banked.visits_per_bank == 8
        assert banked.frame_time_s == pytest.approx(shared.frame_time_s / 8)
        assert banked.elements_per_s == pytest.approx(
            8 * shared.elements_per_s
        )

    def test_uneven_bank_split_rounds_up(self):
        schedule = self._schedule(rows=3, cols=3, banks=2)
        assert schedule.visits_per_bank == 5

    def test_describe(self):
        text = self._schedule().describe()
        assert "8x8" in text and "settle" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._schedule(banks=0)
        with pytest.raises(ConfigurationError):
            self._schedule(banks=65)
        with pytest.raises(ConfigurationError):
            self._schedule(valid_words=0)
        with pytest.raises(ConfigurationError):
            self._schedule(settle_words=-1)
        with pytest.raises(ConfigurationError):
            self._schedule(rows=0)
        with pytest.raises(ConfigurationError):
            self._schedule(output_rate_hz=0.0)

    def test_plan_scan_takes_settling_budget_from_timing(self, mux):
        from repro.array.mux import plan_scan

        decimator = DecimationFilter()
        timing = analyze_mux_timing(mux, decimator)
        schedule = plan_scan(
            timing,
            rows=2,
            cols=2,
            output_rate_hz=decimator.output_rate_hz,
            total_decimation=decimator.params.total_decimation,
            valid_words=5,
        )
        assert schedule.settle_words == timing.output_words_discarded
        assert schedule.words_per_visit == timing.output_words_discarded + 5
