"""Fused N x N scan: bit-identity, fallback, and scan orientation."""

import numpy as np
import pytest

from repro.array.imaging import amplitude_image
from repro.array.scan import ScanController
from repro.batch import batch_kernel_available
from repro.core.chain import ReadoutChain
from repro.params import ArrayParams, NonidealityParams, SystemParams

DECIMATION = 128
DWELL_WORDS = 12
# Scan records are post-suppression for switched elements (the FPGA
# discards 8 words after each mux switch), but element 0 starts from
# reset and keeps its whole dwell — its CIC startup transient sits in
# the first words of the record matrix.  Drop the full 9-word settling
# budget so every column is clean.
SETTLE_EXTRA = 9
ORIENT_DWELL_WORDS = 24


def make_chain(rows, cols, ideal=True):
    base = SystemParams()
    nonideality = NonidealityParams.ideal() if ideal else base.nonideality
    params = base.replace(
        array=ArrayParams(rows=rows, cols=cols, membrane=base.array.membrane),
        nonideality=nonideality,
    )
    return ReadoutChain(params)


def tone_segments(n_elements, dwell, amplitudes=None):
    """Per-element dwell pressure: one tone, optionally amplitude-coded."""
    t = np.arange(dwell) / 128e3
    if amplitudes is None:
        amplitudes = np.full(n_elements, 2000.0)
    phases = 0.05 * np.arange(n_elements)
    return np.asarray(amplitudes)[:, None] * np.sin(
        2 * np.pi * 40.0 * t[None, :] + phases[:, None]
    )


def fused_records(rows, cols, segments):
    chain = make_chain(rows, cols)
    controller = ScanController(chain.chip.mux)
    records = controller.scan_records(chain, segments=segments, fused=True)
    return records, controller


class TestBitIdentity:
    def test_fused_equals_batched(self):
        """The fused kernel pass must replay the batched scan exactly."""
        rows, cols = 3, 3
        segments = tone_segments(rows * cols, DWELL_WORDS * DECIMATION)
        fused, controller = fused_records(rows, cols, segments)

        chain = make_chain(rows, cols)
        ref_controller = ScanController(chain.chip.mux)
        batched = ref_controller.scan_records(
            chain, segments=segments, batched=True
        )
        n = min(fused.shape[0], batched.shape[0])
        assert np.array_equal(fused[:n], batched[:n])
        if batch_kernel_available():
            assert controller.last_scan_fused

    def test_fused_equals_sequential_sessions(self):
        """Matched-bank semantics: each element from the pre-scan state."""
        rows, cols = 2, 2
        n_el = rows * cols
        dwell = DWELL_WORDS * DECIMATION
        segments = tone_segments(n_el, dwell)
        fused, _ = fused_records(rows, cols, segments)

        chain = make_chain(rows, cols)
        saved = chain.chip.state_snapshot()
        field = np.zeros((dwell, n_el))
        columns = []
        for k in range(n_el):
            chain.chip.restore_state(saved)
            session = chain.session(element=k)
            field[:, k] = segments[k]
            session.feed_pressure(field)
            field[:, k] = 0.0
            columns.append(session.recording().values)
        n = min(fused.shape[0], min(c.size for c in columns))
        reference = np.column_stack([c[:n] for c in columns])
        assert np.array_equal(fused[:n], reference)


class TestFallback:
    def test_noisy_chain_falls_back_to_batched(self):
        """Outside the kernel envelope the scan still completes."""
        chain = make_chain(2, 2, ideal=False)
        controller = ScanController(chain.chip.mux)
        segments = tone_segments(4, DWELL_WORDS * DECIMATION)
        records = controller.scan_records(chain, segments=segments, fused=True)
        assert not controller.last_scan_fused
        assert records.ndim == 2 and records.shape[1] == 4

    def test_segments_require_batched_or_fused(self):
        from repro.errors import ConfigurationError

        chain = make_chain(2, 2)
        controller = ScanController(chain.chip.mux)
        segments = tone_segments(4, 256)
        with pytest.raises(ConfigurationError):
            controller.scan_records(
                chain, segments=segments, batched=False, fused=False
            )


class TestNonSquareOrientation:
    """Row-major orientation pinned through scan -> select -> localize."""

    @pytest.mark.parametrize("rows,cols", [(2, 3), (8, 4)])
    def test_hot_element_lands_at_rowcol(self, rows, cols):
        n_el = rows * cols
        hot_row, hot_col = rows - 1, 1
        hot = hot_row * cols + hot_col
        amplitudes = np.full(n_el, 200.0)
        amplitudes[hot] = 3000.0
        segments = tone_segments(
            n_el, ORIENT_DWELL_WORDS * DECIMATION, amplitudes
        )
        records, controller = fused_records(rows, cols, segments)
        settled = records[SETTLE_EXTRA:]

        selection = controller.select_strongest(settled, metric="std")
        assert selection.best_index == hot
        assert (selection.best_row, selection.best_col) == (hot_row, hot_col)
        assert selection.amplitude_map.shape == (rows, cols)
        amp_map = amplitude_image(settled, rows, cols, metric="std")
        assert np.unravel_index(np.argmax(amp_map), amp_map.shape) == (
            hot_row,
            hot_col,
        )

    def test_centroid_pulls_toward_hot_quadrant(self):
        rows, cols = 2, 3
        n_el = rows * cols
        amplitudes = np.full(n_el, 200.0)
        amplitudes[1 * cols + 2] = 3000.0  # last row, +x column
        segments = tone_segments(
            n_el, ORIENT_DWELL_WORDS * DECIMATION, amplitudes
        )
        records, controller = fused_records(rows, cols, segments)
        x, y = controller.localize_source(records[SETTLE_EXTRA:])
        assert x > 0  # +x column
        assert y > 0  # row index grows toward +y in array coordinates
