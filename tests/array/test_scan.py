"""Scan controller: strongest-element selection, localization."""

import numpy as np
import pytest

from repro.array.array2d import SensorArray
from repro.array.mux import AnalogMultiplexer
from repro.array.scan import ScanController
from repro.errors import ConfigurationError, SignalQualityError


@pytest.fixture()
def controller() -> ScanController:
    return ScanController(AnalogMultiplexer(SensorArray()))


def synth_signals(amplitudes, n=200, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 100.0
    pulse = np.sin(2 * np.pi * 1.2 * t)
    sig = np.outer(pulse, np.asarray(amplitudes))
    return sig + 1e-6 * rng.standard_normal(sig.shape)


class TestSelection:
    def test_picks_strongest(self, controller):
        selection = controller.select_strongest(
            synth_signals([0.2, 1.0, 0.4, 0.6])
        )
        assert selection.best_index == 1
        assert (selection.best_row, selection.best_col) == (0, 1)

    def test_mux_follows_selection(self, controller):
        controller.select_strongest(synth_signals([0.2, 0.3, 0.9, 0.1]))
        assert controller.mux.selected == 2

    def test_amplitude_map_shape(self, controller):
        selection = controller.select_strongest(
            synth_signals([1, 2, 3, 4])
        )
        assert selection.amplitude_map.shape == (2, 2)
        assert selection.amplitude_map[1, 1] == selection.amplitude_map.max()

    def test_contrast(self, controller):
        selection = controller.select_strongest(
            synth_signals([1.0, 1.0, 1.0, 2.0])
        )
        assert selection.contrast == pytest.approx(2.0, rel=0.05)

    def test_std_metric(self, controller):
        selection = controller.select_strongest(
            synth_signals([0.1, 0.9, 0.2, 0.3]), metric="std"
        )
        assert selection.best_index == 1

    def test_unknown_metric(self, controller):
        with pytest.raises(ConfigurationError):
            controller.select_strongest(synth_signals([1, 1, 1, 1]), metric="mad")

    def test_flat_signals_raise(self, controller):
        with pytest.raises(SignalQualityError):
            controller.select_strongest(np.zeros((100, 4)))

    def test_shape_validation(self, controller):
        with pytest.raises(ConfigurationError):
            controller.select_strongest(np.zeros((100, 3)))
        with pytest.raises(ConfigurationError):
            controller.select_strongest(np.zeros((1, 4)))

    def test_describe(self, controller):
        selection = controller.select_strongest(synth_signals([1, 2, 3, 4]))
        assert "selected element" in selection.describe()


class TestLocalization:
    def test_centroid_weighted_toward_strong(self, controller):
        # Elements 1 and 3 are the +x column.
        xy = controller.localize_source(synth_signals([0.1, 1.0, 0.1, 1.0]))
        assert xy[0] > 0
        assert xy[1] == pytest.approx(0.0, abs=1e-5)

    def test_uniform_signal_centers(self, controller):
        xy = controller.localize_source(synth_signals([1, 1, 1, 1]))
        assert xy == pytest.approx((0.0, 0.0), abs=1e-5)

    def test_flat_raises(self, controller):
        with pytest.raises(SignalQualityError):
            controller.localize_source(np.zeros((50, 4)))


class TestConfig:
    def test_scan_order_row_major(self, controller):
        assert controller.scan_order() == [0, 1, 2, 3]

    def test_rejects_bad_dwell(self):
        with pytest.raises(ConfigurationError):
            ScanController(
                AnalogMultiplexer(SensorArray()), dwell_samples=1
            )


class TestElementHealth:
    def test_all_healthy_on_clean_signals(self, controller):
        health = controller.element_health(synth_signals([0.2, 0.8, 0.4, 0.6]))
        assert health.healthy.all()
        assert health.n_healthy == 4

    def test_saturated_element_marked_degraded(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6])
        signals[50:150, 1] = 0.999  # railed for half the record
        health = controller.element_health(signals)
        assert not health.healthy[1]
        assert health.healthy[[0, 2, 3]].all()
        assert health.saturated_fraction[1] > 0.02

    def test_flatlined_element_marked_degraded(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6])
        signals[:, 2] = 0.1  # stuck membrane: no pulsatility at all
        health = controller.element_health(signals)
        assert not health.healthy[2]
        assert health.flat_fraction[2] == pytest.approx(1.0)

    def test_short_record_falls_back_to_whole_std(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6], n=10)
        signals[:, 0] = 0.05
        health = controller.element_health(signals)
        assert not health.healthy[0]
        assert health.healthy[1]

    def test_shape_validated(self, controller):
        with pytest.raises(ConfigurationError):
            controller.element_health(np.zeros((100, 3)))

    def test_describe_lists_verdicts(self, controller):
        health = controller.element_health(synth_signals([0.2, 0.8, 0.4, 0.6]))
        assert "element 0" in health.describe()
        assert "ok" in health.describe()


class TestSelectionWithExclusion:
    def test_excluded_strongest_loses_to_runner_up(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6])
        exclude = np.array([False, True, False, False])
        selection = controller.select_strongest(signals, exclude=exclude)
        assert selection.best_index == 3  # runner-up wins

    def test_amplitude_map_still_shows_excluded(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6])
        exclude = np.array([False, True, False, False])
        selection = controller.select_strongest(signals, exclude=exclude)
        flat_map = selection.amplitude_map.ravel()
        assert flat_map[1] == flat_map.max()  # reported, just not chosen

    def test_all_excluded_raises(self, controller):
        with pytest.raises(SignalQualityError, match="unhealthy"):
            controller.select_strongest(
                synth_signals([1, 1, 1, 1]), exclude=np.ones(4, dtype=bool)
            )

    def test_exclude_shape_validated(self, controller):
        with pytest.raises(ConfigurationError):
            controller.select_strongest(
                synth_signals([1, 1, 1, 1]),
                exclude=np.zeros(3, dtype=bool),
            )

    def test_health_screen_rejects_railed_winner(self, controller):
        """A railed element looks strongest to peak-to-peak; the health
        screen must hand the selection to the real signal."""
        signals = synth_signals([0.2, 0.5, 0.4, 0.3])
        railed = np.zeros(signals.shape[0])
        railed[::2] = 0.999
        railed[1::2] = -0.999
        signals[:, 0] = railed
        naive = controller.select_strongest(signals)
        assert naive.best_index == 0
        health = controller.element_health(signals)
        screened = controller.select_strongest(
            signals, exclude=~health.healthy
        )
        assert screened.best_index == 1


class TestLocalizationWithExclusion:
    def _railed(self, n):
        railed = np.zeros(n)
        railed[::2] = 0.999
        railed[1::2] = -0.999
        return railed

    def test_railed_element_drags_centroid_without_mask(self, controller):
        """Regression: a railed element looks strongest to peak-to-peak
        and used to drag the vessel centroid into its own corner."""
        signals = synth_signals([0.5, 0.5, 0.5, 0.5])
        signals[:, 0] = self._railed(signals.shape[0])  # element (0, 0)
        naive = controller.localize_source(signals)
        assert naive[0] < 0 and naive[1] < 0  # dragged toward (-x, -y)

    def test_exclude_restores_centroid(self, controller):
        signals = synth_signals([0.5, 0.5, 0.5, 0.5])
        signals[:, 0] = self._railed(signals.shape[0])
        health = controller.element_health(signals)
        assert not health.healthy[0]
        x, y = controller.localize_source(signals, exclude=~health.healthy)
        # Equal-amplitude centroid of the three surviving elements.
        pitch = controller.array.geometry.pitch_m
        assert x == pytest.approx(pitch / 6, rel=1e-3)
        assert y == pytest.approx(pitch / 6, rel=1e-3)

    def test_all_excluded_raises(self, controller):
        with pytest.raises(SignalQualityError, match="excluded"):
            controller.localize_source(
                synth_signals([1, 1, 1, 1]), exclude=np.ones(4, dtype=bool)
            )

    def test_exclude_shape_validated(self, controller):
        with pytest.raises(ConfigurationError):
            controller.localize_source(
                synth_signals([1, 1, 1, 1]), exclude=np.zeros(3, dtype=bool)
            )


class TestContrastEligibility:
    def test_contrast_median_over_eligible_only(self, controller):
        """The contrast reference statistic must skip excluded elements:
        railed amplitudes in the median would misstate placement quality."""
        signals = synth_signals([4.0, 3.0, 2.0, 1.0])
        exclude = np.array([True, True, False, False])
        selection = controller.select_strongest(signals, exclude=exclude)
        assert selection.best_index == 2
        amps = selection.amplitude_map.ravel()
        eligible_median = np.median(amps[~exclude])
        assert selection.contrast == pytest.approx(
            amps[2] / eligible_median, rel=1e-9
        )
        # The all-element median (2.5x the eligible one here) would have
        # reported the winner as weaker than the array background.
        assert selection.contrast > amps[2] / np.median(amps)


def ideal_chain(rows=2, cols=2):
    from repro.core.chain import ReadoutChain
    from repro.params import ArrayParams, NonidealityParams, SystemParams

    base = SystemParams()
    return ReadoutChain(
        base.replace(
            array=ArrayParams(
                rows=rows, cols=cols, membrane=base.array.membrane
            ),
            nonideality=NonidealityParams.ideal(),
        )
    )


class TestScanTruncationBooking:
    def test_batched_scan_books_flush_asymmetry(self):
        """The element already routed at scan start keeps the words the
        FPGA suppresses everywhere else; the alignment drop is booked."""
        chain = ideal_chain()
        controller = ScanController(chain.chip.mux)
        segments = np.zeros((4, 12 * 128))
        records = controller.scan_records(
            chain, segments=segments, batched=True
        )
        trunc = controller.last_scan_truncation
        assert trunc is not None
        assert records.shape[0] == trunc.words_kept
        assert trunc.words_dropped.tolist() == [8, 0, 0, 0]
        assert trunc.total_dropped == 8
        assert (trunc.words_recorded - trunc.words_dropped).tolist() == [
            trunc.words_kept
        ] * 4
        assert "element 0: -8" in trunc.describe()

    def test_equal_records_describe(self):
        from repro.array.scan import ScanTruncation

        trunc = ScanTruncation(
            words_recorded=np.array([5, 5]),
            words_kept=5,
            words_dropped=np.array([0, 0]),
        )
        assert trunc.total_dropped == 0
        assert "all records equal" in trunc.describe()


class TestScanAndLocalize:
    def test_fused_segments_localize_hot_column(self):
        chain = ideal_chain()
        controller = ScanController(chain.chip.mux)
        dwell = 24 * 128
        t = np.arange(dwell) / 128e3
        tone = np.sin(2 * np.pi * 40.0 * t)
        amplitudes = np.array([500.0, 3000.0, 500.0, 3000.0])  # +x column
        segments = amplitudes[:, None] * tone[None, :]
        x, y = controller.scan_and_localize(
            chain,
            segments=segments,
            fused=True,
            settle_words=9,
            health_screen=False,
        )
        assert x > 0
        assert abs(y) < controller.array.geometry.pitch_m


class TestSchedule:
    def test_controller_schedule_wires_timing_and_layout(self, controller):
        from repro.array.mux import analyze_mux_timing
        from repro.dsp.decimator import DecimationFilter

        decimator = DecimationFilter()
        schedule = controller.schedule(decimator, valid_words=10, banks=2)
        timing = analyze_mux_timing(controller.mux, decimator)
        assert (schedule.rows, schedule.cols) == (2, 2)
        assert schedule.banks == 2
        assert schedule.settle_words == timing.output_words_discarded
        assert schedule.valid_words == 10
        assert schedule.output_rate_hz == decimator.output_rate_hz
        assert (
            schedule.total_decimation
            == decimator.params.total_decimation
        )
