"""Scan controller: strongest-element selection, localization."""

import numpy as np
import pytest

from repro.array.array2d import SensorArray
from repro.array.mux import AnalogMultiplexer
from repro.array.scan import ScanController
from repro.errors import ConfigurationError, SignalQualityError


@pytest.fixture()
def controller() -> ScanController:
    return ScanController(AnalogMultiplexer(SensorArray()))


def synth_signals(amplitudes, n=200, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 100.0
    pulse = np.sin(2 * np.pi * 1.2 * t)
    sig = np.outer(pulse, np.asarray(amplitudes))
    return sig + 1e-6 * rng.standard_normal(sig.shape)


class TestSelection:
    def test_picks_strongest(self, controller):
        selection = controller.select_strongest(
            synth_signals([0.2, 1.0, 0.4, 0.6])
        )
        assert selection.best_index == 1
        assert (selection.best_row, selection.best_col) == (0, 1)

    def test_mux_follows_selection(self, controller):
        controller.select_strongest(synth_signals([0.2, 0.3, 0.9, 0.1]))
        assert controller.mux.selected == 2

    def test_amplitude_map_shape(self, controller):
        selection = controller.select_strongest(
            synth_signals([1, 2, 3, 4])
        )
        assert selection.amplitude_map.shape == (2, 2)
        assert selection.amplitude_map[1, 1] == selection.amplitude_map.max()

    def test_contrast(self, controller):
        selection = controller.select_strongest(
            synth_signals([1.0, 1.0, 1.0, 2.0])
        )
        assert selection.contrast == pytest.approx(2.0, rel=0.05)

    def test_std_metric(self, controller):
        selection = controller.select_strongest(
            synth_signals([0.1, 0.9, 0.2, 0.3]), metric="std"
        )
        assert selection.best_index == 1

    def test_unknown_metric(self, controller):
        with pytest.raises(ConfigurationError):
            controller.select_strongest(synth_signals([1, 1, 1, 1]), metric="mad")

    def test_flat_signals_raise(self, controller):
        with pytest.raises(SignalQualityError):
            controller.select_strongest(np.zeros((100, 4)))

    def test_shape_validation(self, controller):
        with pytest.raises(ConfigurationError):
            controller.select_strongest(np.zeros((100, 3)))
        with pytest.raises(ConfigurationError):
            controller.select_strongest(np.zeros((1, 4)))

    def test_describe(self, controller):
        selection = controller.select_strongest(synth_signals([1, 2, 3, 4]))
        assert "selected element" in selection.describe()


class TestLocalization:
    def test_centroid_weighted_toward_strong(self, controller):
        # Elements 1 and 3 are the +x column.
        xy = controller.localize_source(synth_signals([0.1, 1.0, 0.1, 1.0]))
        assert xy[0] > 0
        assert xy[1] == pytest.approx(0.0, abs=1e-5)

    def test_uniform_signal_centers(self, controller):
        xy = controller.localize_source(synth_signals([1, 1, 1, 1]))
        assert xy == pytest.approx((0.0, 0.0), abs=1e-5)

    def test_flat_raises(self, controller):
        with pytest.raises(SignalQualityError):
            controller.localize_source(np.zeros((50, 4)))


class TestConfig:
    def test_scan_order_row_major(self, controller):
        assert controller.scan_order() == [0, 1, 2, 3]

    def test_rejects_bad_dwell(self):
        with pytest.raises(ConfigurationError):
            ScanController(
                AnalogMultiplexer(SensorArray()), dwell_samples=1
            )
