"""Scan controller: strongest-element selection, localization."""

import numpy as np
import pytest

from repro.array.array2d import SensorArray
from repro.array.mux import AnalogMultiplexer
from repro.array.scan import ScanController
from repro.errors import ConfigurationError, SignalQualityError


@pytest.fixture()
def controller() -> ScanController:
    return ScanController(AnalogMultiplexer(SensorArray()))


def synth_signals(amplitudes, n=200, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 100.0
    pulse = np.sin(2 * np.pi * 1.2 * t)
    sig = np.outer(pulse, np.asarray(amplitudes))
    return sig + 1e-6 * rng.standard_normal(sig.shape)


class TestSelection:
    def test_picks_strongest(self, controller):
        selection = controller.select_strongest(
            synth_signals([0.2, 1.0, 0.4, 0.6])
        )
        assert selection.best_index == 1
        assert (selection.best_row, selection.best_col) == (0, 1)

    def test_mux_follows_selection(self, controller):
        controller.select_strongest(synth_signals([0.2, 0.3, 0.9, 0.1]))
        assert controller.mux.selected == 2

    def test_amplitude_map_shape(self, controller):
        selection = controller.select_strongest(
            synth_signals([1, 2, 3, 4])
        )
        assert selection.amplitude_map.shape == (2, 2)
        assert selection.amplitude_map[1, 1] == selection.amplitude_map.max()

    def test_contrast(self, controller):
        selection = controller.select_strongest(
            synth_signals([1.0, 1.0, 1.0, 2.0])
        )
        assert selection.contrast == pytest.approx(2.0, rel=0.05)

    def test_std_metric(self, controller):
        selection = controller.select_strongest(
            synth_signals([0.1, 0.9, 0.2, 0.3]), metric="std"
        )
        assert selection.best_index == 1

    def test_unknown_metric(self, controller):
        with pytest.raises(ConfigurationError):
            controller.select_strongest(synth_signals([1, 1, 1, 1]), metric="mad")

    def test_flat_signals_raise(self, controller):
        with pytest.raises(SignalQualityError):
            controller.select_strongest(np.zeros((100, 4)))

    def test_shape_validation(self, controller):
        with pytest.raises(ConfigurationError):
            controller.select_strongest(np.zeros((100, 3)))
        with pytest.raises(ConfigurationError):
            controller.select_strongest(np.zeros((1, 4)))

    def test_describe(self, controller):
        selection = controller.select_strongest(synth_signals([1, 2, 3, 4]))
        assert "selected element" in selection.describe()


class TestLocalization:
    def test_centroid_weighted_toward_strong(self, controller):
        # Elements 1 and 3 are the +x column.
        xy = controller.localize_source(synth_signals([0.1, 1.0, 0.1, 1.0]))
        assert xy[0] > 0
        assert xy[1] == pytest.approx(0.0, abs=1e-5)

    def test_uniform_signal_centers(self, controller):
        xy = controller.localize_source(synth_signals([1, 1, 1, 1]))
        assert xy == pytest.approx((0.0, 0.0), abs=1e-5)

    def test_flat_raises(self, controller):
        with pytest.raises(SignalQualityError):
            controller.localize_source(np.zeros((50, 4)))


class TestConfig:
    def test_scan_order_row_major(self, controller):
        assert controller.scan_order() == [0, 1, 2, 3]

    def test_rejects_bad_dwell(self):
        with pytest.raises(ConfigurationError):
            ScanController(
                AnalogMultiplexer(SensorArray()), dwell_samples=1
            )


class TestElementHealth:
    def test_all_healthy_on_clean_signals(self, controller):
        health = controller.element_health(synth_signals([0.2, 0.8, 0.4, 0.6]))
        assert health.healthy.all()
        assert health.n_healthy == 4

    def test_saturated_element_marked_degraded(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6])
        signals[50:150, 1] = 0.999  # railed for half the record
        health = controller.element_health(signals)
        assert not health.healthy[1]
        assert health.healthy[[0, 2, 3]].all()
        assert health.saturated_fraction[1] > 0.02

    def test_flatlined_element_marked_degraded(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6])
        signals[:, 2] = 0.1  # stuck membrane: no pulsatility at all
        health = controller.element_health(signals)
        assert not health.healthy[2]
        assert health.flat_fraction[2] == pytest.approx(1.0)

    def test_short_record_falls_back_to_whole_std(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6], n=10)
        signals[:, 0] = 0.05
        health = controller.element_health(signals)
        assert not health.healthy[0]
        assert health.healthy[1]

    def test_shape_validated(self, controller):
        with pytest.raises(ConfigurationError):
            controller.element_health(np.zeros((100, 3)))

    def test_describe_lists_verdicts(self, controller):
        health = controller.element_health(synth_signals([0.2, 0.8, 0.4, 0.6]))
        assert "element 0" in health.describe()
        assert "ok" in health.describe()


class TestSelectionWithExclusion:
    def test_excluded_strongest_loses_to_runner_up(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6])
        exclude = np.array([False, True, False, False])
        selection = controller.select_strongest(signals, exclude=exclude)
        assert selection.best_index == 3  # runner-up wins

    def test_amplitude_map_still_shows_excluded(self, controller):
        signals = synth_signals([0.2, 0.8, 0.4, 0.6])
        exclude = np.array([False, True, False, False])
        selection = controller.select_strongest(signals, exclude=exclude)
        flat_map = selection.amplitude_map.ravel()
        assert flat_map[1] == flat_map.max()  # reported, just not chosen

    def test_all_excluded_raises(self, controller):
        with pytest.raises(SignalQualityError, match="unhealthy"):
            controller.select_strongest(
                synth_signals([1, 1, 1, 1]), exclude=np.ones(4, dtype=bool)
            )

    def test_exclude_shape_validated(self, controller):
        with pytest.raises(ConfigurationError):
            controller.select_strongest(
                synth_signals([1, 1, 1, 1]),
                exclude=np.zeros(3, dtype=bool),
            )

    def test_health_screen_rejects_railed_winner(self, controller):
        """A railed element looks strongest to peak-to-peak; the health
        screen must hand the selection to the real signal."""
        signals = synth_signals([0.2, 0.5, 0.4, 0.3])
        railed = np.zeros(signals.shape[0])
        railed[::2] = 0.999
        railed[1::2] = -0.999
        signals[:, 0] = railed
        naive = controller.select_strongest(signals)
        assert naive.best_index == 0
        health = controller.element_health(signals)
        screened = controller.select_strongest(
            signals, exclude=~health.healthy
        )
        assert screened.best_index == 1
