"""Imaging primitives: maps, sub-pixel peaks, artery line, registration,
fusion."""

import math

import numpy as np
import pytest

from repro.array.imaging import (
    amplitude_image,
    fuse_elements,
    localize_artery,
    log_parabola_vertex,
    register_shift,
)
from repro.errors import ConfigurationError, SignalQualityError
from repro.mems.geometry import ArrayGeometry
from repro.params import ArrayParams


def geometry(rows=8, cols=8) -> ArrayGeometry:
    return ArrayGeometry(ArrayParams(rows=rows, cols=cols))


def ridge_map(geo, transverse_m, angle_rad, sigma_m):
    """Analytic Gaussian artery ridge on the element grid."""
    centers = geo.element_centers_m()
    x = centers[:, 0].reshape(geo.rows, geo.cols)
    y = centers[:, 1].reshape(geo.rows, geo.cols)
    line_x = transverse_m + math.tan(angle_rad) * y
    return np.exp(-((x - line_x) ** 2) / (2 * sigma_m**2))


class TestAmplitudeImage:
    def test_row_major_fold(self):
        amps = np.arange(1.0, 7.0)
        t = np.linspace(0, 1, 50)
        signals = np.outer(np.sin(2 * np.pi * t), amps)
        img = amplitude_image(signals, 2, 3)
        assert img.shape == (2, 3)
        # Element (r, c) = flat index r * cols + c, and peak-to-peak
        # scales with the per-element amplitude.
        assert img[1, 2] == img.max()
        assert np.argmax(img.ravel()) == 5

    def test_std_metric(self):
        signals = np.outer(np.sin(np.linspace(0, 7, 60)), [1.0, 2.0, 3.0, 4.0])
        img = amplitude_image(signals, 2, 2, metric="std")
        assert img[1, 1] == img.max()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            amplitude_image(np.zeros((10, 5)), 2, 3)
        with pytest.raises(ConfigurationError):
            amplitude_image(np.zeros((10, 6)), 2, 3, metric="mad")


class TestLogParabolaVertex:
    def test_exact_on_gaussian(self):
        xs = np.linspace(-1.0, 1.0, 9)
        for peak in (0.13, -0.4):
            amp = np.exp(-((xs - peak) ** 2) / 0.5)
            assert log_parabola_vertex(xs, amp) == pytest.approx(peak, abs=1e-9)

    def test_peak_outside_footprint(self):
        xs = np.linspace(-1.0, 1.0, 9)
        amp = np.exp(-((xs - 1.7) ** 2) / 0.5)
        assert log_parabola_vertex(xs, amp) == pytest.approx(1.7, abs=1e-6)

    def test_two_points_fall_back_to_argmax(self):
        assert log_parabola_vertex(np.array([0.0, 1.0]), np.array([1.0, 2.0])) == 1.0

    def test_inverted_profile_falls_back_to_argmax(self):
        xs = np.linspace(-1, 1, 5)
        amp = np.exp((xs**2))  # valley, not peak
        assert log_parabola_vertex(xs, amp) == pytest.approx(xs[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            log_parabola_vertex(np.zeros(3), np.zeros(4))


class TestLocalizeArtery:
    def test_recovers_line(self):
        geo = geometry()
        x0, theta = 40e-6, 0.08
        est = localize_artery(
            ridge_map(geo, x0, theta, sigma_m=200e-6), geo
        )
        assert est.transverse_m == pytest.approx(x0, abs=1e-8)
        assert est.angle_rad == pytest.approx(theta, abs=1e-6)
        assert est.n_rows_used == geo.rows
        assert est.line_x_m(0.0) == pytest.approx(est.transverse_m)

    def test_excluded_pixel_cannot_bend_the_line(self):
        geo = geometry()
        clean = ridge_map(geo, 30e-6, 0.05, sigma_m=200e-6)
        railed = clean.copy()
        railed[0, 7] = 50.0  # dead pixel screaming at the rail
        exclude = np.zeros_like(clean, dtype=bool)
        exclude[0, 7] = True
        est = localize_artery(railed, geo, exclude=exclude)
        ref = localize_artery(clean, geo)
        # The excluded sample is zeroed, not interpolated, so the row fit
        # shifts slightly — but the line must stay at sub-pitch accuracy
        # instead of being dragged toward the rail.
        assert est.transverse_m == pytest.approx(ref.transverse_m, abs=20e-6)

    def test_all_excluded_raises(self):
        geo = geometry(2, 3)
        with pytest.raises(SignalQualityError):
            localize_artery(
                np.ones((2, 3)), geo, exclude=np.ones((2, 3), dtype=bool)
            )

    def test_flat_map_raises(self):
        geo = geometry(2, 3)
        with pytest.raises(SignalQualityError):
            localize_artery(np.zeros((2, 3)), geo)

    def test_shape_validated(self):
        with pytest.raises(ConfigurationError):
            localize_artery(np.ones((3, 3)), geometry(2, 3))

    def test_narrow_array_falls_back_to_1d(self):
        """Rows with < 3 usable columns collapse to the 1-D estimate."""
        geo = geometry(4, 3)
        amps = ridge_map(geo, 10e-6, 0.0, sigma_m=200e-6)
        amps[:, 2] = 0.0  # only two live columns per row
        est = localize_artery(amps, geo)
        assert est.n_rows_used == 0
        assert est.angle_rad == 0.0


class TestRegisterShift:
    def blob(self, geo, cx, cy, sigma=2.0):
        r = np.arange(geo.rows)[:, None]
        c = np.arange(geo.cols)[None, :]
        return np.exp(-((c - cx) ** 2 + (r - cy) ** 2) / (2 * sigma**2))

    def test_subpixel_shift_recovered(self):
        geo = geometry(16, 16)
        pitch = geo.pitch_m
        ref = self.blob(geo, 7.0, 8.0)
        moved = self.blob(geo, 7.0 + 1.3, 8.0 - 0.7)
        dx, dy = register_shift(ref, moved, pitch)
        # Parabolic peak refinement on a Gaussian correlation surface has
        # a small pull-to-integer bias, so allow a ~0.15 px band.
        assert dx / pitch == pytest.approx(1.3, abs=0.15)
        assert dy / pitch == pytest.approx(-0.7, abs=0.15)

    def test_zero_shift(self):
        geo = geometry(8, 8)
        ref = self.blob(geo, 3.5, 3.5)
        dx, dy = register_shift(ref, ref, geo.pitch_m)
        assert abs(dx) < 1e-12 and abs(dy) < 1e-12

    def test_flat_map_raises(self):
        with pytest.raises(SignalQualityError):
            register_shift(np.ones((4, 4)), np.ones((4, 4)), 1e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            register_shift(np.ones((4, 4)), np.ones((4, 5)), 1e-4)
        with pytest.raises(ConfigurationError):
            register_shift(np.ones((4, 4)), np.ones((4, 4)), 0.0)


class TestFuseElements:
    def synth(self, gains, n=400, noise=0.05, seed=3):
        rng = np.random.default_rng(seed)
        t = np.arange(n) / 100.0
        pulse = np.sin(2 * np.pi * 1.3 * t)
        return np.outer(pulse, gains) + noise * rng.standard_normal(
            (n, len(gains))
        )

    def test_predicted_gain_is_l2_over_max(self):
        fusion = fuse_elements(self.synth([1.0, 1.0, 1.0, 1.0], noise=0.0))
        assert fusion.predicted_snr_gain == pytest.approx(2.0, rel=1e-6)

    def test_weights_proportional_to_amplitude(self):
        fusion = fuse_elements(self.synth([3.0, 1.0], noise=0.0))
        assert fusion.weights.sum() == pytest.approx(1.0)
        assert fusion.weights[0] == pytest.approx(0.75, rel=1e-6)
        assert fusion.best_index == 0

    def test_fusion_reduces_noise(self):
        gains = [1.0, 1.0, 1.0, 1.0]
        signals = self.synth(gains, noise=0.2)
        fusion = fuse_elements(signals)
        t = np.arange(signals.shape[0]) / 100.0
        template = np.sin(2 * np.pi * 1.3 * t)
        template /= np.linalg.norm(template)

        def snr(record):
            amp = record @ template
            return amp / (record - amp * template).std()

        assert snr(fusion.waveform) > snr(signals[:, fusion.best_index])

    def test_top_k_restricts_support(self):
        fusion = fuse_elements(
            self.synth([5.0, 4.0, 0.1, 0.1], noise=0.0), top_k=2
        )
        assert fusion.used.tolist() == [True, True, False, False]

    def test_exclude_bars_element(self):
        fusion = fuse_elements(
            self.synth([5.0, 1.0], noise=0.0),
            exclude=np.array([True, False]),
        )
        assert fusion.best_index == 1
        assert fusion.weights[0] == 0.0

    def test_all_excluded_raises(self):
        with pytest.raises(SignalQualityError):
            fuse_elements(
                self.synth([1.0, 1.0]), exclude=np.array([True, True])
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fuse_elements(np.zeros((1, 4)))
        with pytest.raises(ConfigurationError):
            fuse_elements(self.synth([1.0, 1.0]), top_k=0)
        with pytest.raises(ConfigurationError):
            fuse_elements(self.synth([1.0, 1.0]), metric="mad")
