"""Array element wrapper."""

import pytest

from repro.array.element import ArrayElement
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def element(sensor) -> ArrayElement:
    return ArrayElement(
        index=0,
        row=0,
        col=0,
        center_m=(-75e-6, -75e-6),
        sensor=sensor,
        capacitance_scale=1.01,
        offset_cap_f=2e-15,
    )


class TestTransfer:
    def test_mismatch_applied(self, element, sensor):
        base = sensor.capacitance_f(0.0)[0]
        assert element.capacitance_f(0.0)[0] == pytest.approx(
            base * 1.01 + 2e-15
        )

    def test_rest_capacitance_consistent(self, element):
        assert element.rest_capacitance_f == pytest.approx(
            element.capacitance_f(0.0)[0]
        )

    def test_responds_to_pressure(self, element):
        assert element.capacitance_f(5000.0)[0] > element.rest_capacitance_f


class TestGeometry:
    def test_distance(self, element):
        assert element.distance_to_m((-75e-6, -75e-6)) == pytest.approx(0.0)
        assert element.distance_to_m((75e-6, -75e-6)) == pytest.approx(150e-6)

    def test_rejects_bad_scale(self, sensor):
        with pytest.raises(ConfigurationError):
            ArrayElement(
                index=0, row=0, col=0, center_m=(0, 0), sensor=sensor,
                capacitance_scale=0.0,
            )
