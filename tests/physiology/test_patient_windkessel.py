"""VirtualPatient with the Windkessel waveform engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physiology.patient import VirtualPatient


@pytest.fixture(scope="module")
def recording():
    patient = VirtualPatient(
        engine="windkessel", rng=np.random.default_rng(81)
    )
    return patient.record(duration_s=20.0, sample_rate_hz=500.0)


class TestWindkesselEngine:
    def test_targets_hit_after_settling(self, recording):
        settled = recording.beat_truth[
            recording.beat_truth[:, 0] > 8.0
        ]
        assert settled[:, 1].mean() == pytest.approx(120.0, abs=6.0)
        assert settled[:, 2].mean() == pytest.approx(80.0, abs=6.0)

    def test_beat_structure_present(self, recording):
        """The waveform pulses at the heart rate."""
        from repro.calibration.features import detect_beats

        settled = recording.pressure_mmhg[recording.times_s > 8.0]
        feats = detect_beats(settled, 500.0)
        assert feats.pulse_rate_bpm() == pytest.approx(70.0, abs=5.0)

    def test_diastolic_decay_shape(self, recording):
        """Windkessel fingerprint: late diastole decays exponentially
        (convex, monotone) rather than showing the template's dicrotic
        wave structure."""
        t = recording.times_s
        p = recording.pressure_mmhg
        schedule = recording.schedule
        onsets = schedule.onset_times_s
        k = np.searchsorted(onsets, 12.0)
        start, stop = onsets[k], onsets[k + 1]
        mask = (t >= start + 0.55 * (stop - start)) & (t < stop - 0.02)
        segment = p[mask]
        assert np.all(np.diff(segment) < 0.05)  # monotone decay (+noise)

    def test_engine_validation(self):
        with pytest.raises(ConfigurationError):
            VirtualPatient(engine="magic")

    def test_template_engine_unchanged(self):
        a = VirtualPatient(rng=np.random.default_rng(82)).record(5.0, 200.0)
        b = VirtualPatient(
            engine="template", rng=np.random.default_rng(82)
        ).record(5.0, 200.0)
        assert a.pressure_mmhg == pytest.approx(b.pressure_mmhg)

    def test_full_chain_compatible(self):
        """The Windkessel patient drives the monitor end to end."""
        from repro.core.chain import ReadoutChain
        from repro.core.monitor import BloodPressureMonitor
        from repro.params import PASCAL_PER_MMHG, SystemParams
        from repro.tonometry.contact import ContactModel
        from repro.tonometry.coupling import TonometricCoupling

        params = SystemParams()
        rng = np.random.default_rng(83)
        chain = ReadoutChain(params, rng=rng)
        contact = ContactModel(
            contact=params.contact, tissue=params.tissue,
            mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG,
        )
        coupling = TonometricCoupling(
            chain.chip.array.geometry, contact, rng=rng
        )
        monitor = BloodPressureMonitor(chain, coupling)
        patient = VirtualPatient(engine="windkessel", rng=rng)
        result = monitor.measure(
            patient, duration_s=6.0, scan_dwell_s=0.5, rng=rng
        )
        assert result.quality.n_beats >= 4
        assert abs(result.systolic_error_mmhg) < 10.0
