"""Beat scheduler: rates, HRV, phase computation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physiology.heart import BeatScheduler


class TestGeneration:
    def test_mean_rate(self, rng):
        sched = BeatScheduler(heart_rate_bpm=70.0).generate(120.0, rng=rng)
        assert sched.mean_rate_bpm() == pytest.approx(70.0, rel=0.05)

    def test_covers_duration(self, rng):
        sched = BeatScheduler().generate(30.0, rng=rng)
        assert sched.onset_times_s[-1] >= 30.0

    def test_hrv_spread(self, rng):
        sched = BeatScheduler(
            heart_rate_bpm=60.0, hrv_rms_fraction=0.05, rsa_fraction=0.0
        ).generate(300.0, rng=rng)
        rr = sched.rr_intervals_s()
        assert rr.std() / rr.mean() == pytest.approx(0.05, rel=0.3)

    def test_zero_hrv_regular(self, rng):
        sched = BeatScheduler(
            hrv_rms_fraction=0.0, rsa_fraction=0.0
        ).generate(30.0, rng=rng)
        rr = sched.rr_intervals_s()
        assert rr.std() < 1e-12

    def test_physiologic_floor(self, rng):
        """Extreme HRV draws cannot make RR shorter than 0.3x mean."""
        sched = BeatScheduler(hrv_rms_fraction=1.0).generate(120.0, rng=rng)
        rr = sched.rr_intervals_s()
        assert rr.min() >= 0.3 * (60.0 / 70.0) - 1e-12

    def test_reproducible(self):
        a = BeatScheduler().generate(20.0, rng=np.random.default_rng(1))
        b = BeatScheduler().generate(20.0, rng=np.random.default_rng(1))
        assert a.onset_times_s == pytest.approx(b.onset_times_s)

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ConfigurationError):
            BeatScheduler().generate(0.0, rng=rng)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            BeatScheduler(heart_rate_bpm=0.0)


class TestPhase:
    def test_phase_zero_at_onset(self, rng):
        sched = BeatScheduler(hrv_rms_fraction=0.0, rsa_fraction=0.0).generate(
            10.0, rng=rng
        )
        idx, phase = sched.beat_phase(sched.onset_times_s[:-1])
        assert phase == pytest.approx(np.zeros_like(phase), abs=1e-9)

    def test_phase_monotone_within_beat(self, rng):
        sched = BeatScheduler().generate(10.0, rng=rng)
        t0, t1 = sched.onset_times_s[2], sched.onset_times_s[3]
        times = np.linspace(t0, t1 - 1e-6, 50)
        idx, phase = sched.beat_phase(times)
        assert np.all(np.diff(phase) > 0)
        assert np.all(idx == 2)

    def test_phase_in_unit_interval(self, rng):
        sched = BeatScheduler().generate(20.0, rng=rng)
        times = np.linspace(0.0, 20.0, 999)
        _, phase = sched.beat_phase(times)
        assert np.all(phase >= 0.0)
        assert np.all(phase < 1.0)

    def test_n_beats(self, rng):
        sched = BeatScheduler().generate(10.0, rng=rng)
        assert sched.n_beats == sched.onset_times_s.size - 1
