"""Motion artifact generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physiology.artifacts import MotionArtifactGenerator


class TestGeneration:
    def test_shapes(self, rng):
        gen = MotionArtifactGenerator()
        record = gen.generate(30.0, 250.0, rng=rng)
        assert record.times_s.size == record.pressure_mmhg.size == 7500

    def test_event_rates(self):
        gen = MotionArtifactGenerator(
            tap_rate_per_min=10.0, flexion_rate_per_min=5.0,
            creep_mmhg_per_min=0.0,
        )
        counts = []
        for seed in range(12):
            record = gen.generate(60.0, 100.0, rng=np.random.default_rng(seed))
            counts.append(len(record.events))
        assert np.mean(counts) == pytest.approx(15.0, rel=0.35)

    def test_event_kinds(self, rng):
        gen = MotionArtifactGenerator(
            tap_rate_per_min=30.0, flexion_rate_per_min=30.0
        )
        record = gen.generate(60.0, 100.0, rng=rng)
        kinds = {e.kind for e in record.events}
        assert kinds == {"tap", "flexion"}

    def test_no_events_when_rates_zero(self, rng):
        gen = MotionArtifactGenerator(
            tap_rate_per_min=0.0, flexion_rate_per_min=0.0,
            creep_mmhg_per_min=0.0,
        )
        record = gen.generate(30.0, 100.0, rng=rng)
        assert len(record.events) == 0
        assert np.allclose(record.pressure_mmhg, 0.0)

    def test_creep_is_linear(self, rng):
        gen = MotionArtifactGenerator(
            tap_rate_per_min=0.0, flexion_rate_per_min=0.0,
            creep_mmhg_per_min=2.0,
        )
        record = gen.generate(120.0, 50.0, rng=rng)
        assert record.pressure_mmhg[-1] == pytest.approx(4.0, rel=0.01)

    def test_contaminated_mask_covers_events(self, rng):
        gen = MotionArtifactGenerator(tap_rate_per_min=20.0)
        record = gen.generate(60.0, 100.0, rng=rng)
        mask = record.contaminated_mask(guard_s=0.0)
        for event in record.events:
            idx = int((event.start_s + event.duration_s / 2) * 100.0)
            if idx < mask.size:
                assert mask[idx]

    def test_mask_guard_expands(self, rng):
        gen = MotionArtifactGenerator(tap_rate_per_min=20.0)
        record = gen.generate(60.0, 100.0, rng=rng)
        tight = record.contaminated_mask(guard_s=0.0).sum()
        wide = record.contaminated_mask(guard_s=0.5).sum()
        if record.events:
            assert wide > tight

    def test_pa_conversion(self, rng):
        gen = MotionArtifactGenerator()
        record = gen.generate(10.0, 100.0, rng=rng)
        assert record.pressure_pa == pytest.approx(
            record.pressure_mmhg * 133.322, rel=1e-5
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            MotionArtifactGenerator(tap_rate_per_min=-1.0)
        with pytest.raises(ConfigurationError):
            MotionArtifactGenerator().generate(0.0, 100.0)
