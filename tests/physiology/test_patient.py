"""Virtual patient: ground-truth waveform generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.params import PatientParams
from repro.physiology.patient import VirtualPatient


@pytest.fixture(scope="module")
def recording():
    patient = VirtualPatient(rng=np.random.default_rng(3))
    return patient.record(duration_s=20.0, sample_rate_hz=500.0)


class TestRecord:
    def test_shapes(self, recording):
        assert recording.times_s.shape == recording.pressure_mmhg.shape
        assert recording.times_s.size == 20 * 500

    def test_targets_hit(self, recording):
        assert recording.systolic_mmhg == pytest.approx(120.0, abs=5.0)
        assert recording.diastolic_mmhg == pytest.approx(80.0, abs=5.0)

    def test_map_rule(self, recording):
        expected_map = 80.0 + 40.0 / 3.0
        assert recording.mean_mmhg == pytest.approx(expected_map, abs=6.0)

    def test_beat_truth_ordered(self, recording):
        onsets = recording.beat_truth[:, 0]
        assert np.all(np.diff(onsets) > 0)
        assert np.all(
            recording.beat_truth[:, 1] > recording.beat_truth[:, 2]
        )

    def test_beat_count_matches_rate(self, recording):
        # ~70 bpm over 20 s -> ~23 beats.
        assert recording.beat_truth.shape[0] == pytest.approx(23, abs=2)

    def test_pressure_pa_conversion(self, recording):
        assert recording.pressure_pa == pytest.approx(
            recording.pressure_mmhg * 133.322, rel=1e-5
        )

    def test_physiologic_bounds(self, recording):
        assert recording.pressure_mmhg.min() > 50.0
        assert recording.pressure_mmhg.max() < 160.0


class TestTrend:
    def test_trend_shifts_pressure(self):
        patient = VirtualPatient(rng=np.random.default_rng(4))
        flat = patient.record(10.0, 500.0)
        patient2 = VirtualPatient(rng=np.random.default_rng(4))
        shifted = patient2.record(
            10.0, 500.0, pressure_trend_mmhg=lambda t: 20.0 * np.ones_like(t)
        )
        assert shifted.mean_mmhg == pytest.approx(flat.mean_mmhg + 20.0, abs=1.0)


class TestCustomPatients:
    def test_hypertensive(self):
        params = PatientParams(systolic_mmhg=160.0, diastolic_mmhg=100.0)
        rec = VirtualPatient(params, rng=np.random.default_rng(5)).record(
            10.0, 500.0
        )
        assert rec.systolic_mmhg == pytest.approx(160.0, abs=6.0)

    def test_tachycardia(self):
        params = PatientParams(heart_rate_bpm=120.0)
        rec = VirtualPatient(params, rng=np.random.default_rng(6)).record(
            10.0, 500.0
        )
        assert rec.beat_truth.shape[0] == pytest.approx(20, abs=2)

    def test_rejects_short_record(self):
        patient = VirtualPatient()
        with pytest.raises(ConfigurationError):
            patient.record(0.0, 500.0)

    def test_rejects_inverted_pressures(self):
        with pytest.raises(ConfigurationError):
            PatientParams(systolic_mmhg=80.0, diastolic_mmhg=120.0)

    def test_reproducible(self):
        a = VirtualPatient(rng=np.random.default_rng(7)).record(5.0, 200.0)
        b = VirtualPatient(rng=np.random.default_rng(7)).record(5.0, 200.0)
        assert a.pressure_mmhg == pytest.approx(b.pressure_mmhg)
