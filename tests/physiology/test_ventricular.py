"""Ventricular template and arterial-line calibration reference."""

import numpy as np
import pytest

from repro.baselines.catheter import ArterialLineReference
from repro.errors import ConfigurationError
from repro.params import PatientParams
from repro.physiology import VirtualPatient, ventricular_template


class TestVentricularTemplate:
    @pytest.fixture(scope="class")
    def template(self):
        return ventricular_template()

    def test_normalized(self, template):
        phase = np.linspace(0, 1, 2048, endpoint=False)
        wave = template.evaluate(phase)
        assert wave.min() == pytest.approx(0.0, abs=1e-9)
        assert wave.max() == pytest.approx(1.0, abs=1e-9)

    def test_diastole_near_zero(self, template):
        """Ventricular signature: most of the beat near the floor."""
        phase = np.linspace(0, 1, 2048, endpoint=False)
        wave = template.evaluate(phase)
        assert np.mean(wave < 0.1) > 0.45

    def test_systolic_plateau_wide(self, template):
        """The systolic complex spans a wider phase band than a radial
        peak: > 15 % of the beat above 80 % height."""
        phase = np.linspace(0, 1, 2048, endpoint=False)
        wave = template.evaluate(phase)
        assert np.mean(wave > 0.8) > 0.15

    def test_no_notch(self, template):
        """No dicrotic structure: the decay limb has no local minimum
        followed by a rebound above 2 % of the pulse."""
        from scipy.signal import argrelextrema

        phase = np.linspace(0, 1, 2048, endpoint=False)
        wave = template.evaluate(phase)
        peak = int(np.argmax(wave))
        segment = wave[peak : int(0.7 * wave.size)]
        minima = argrelextrema(segment, np.less, order=5)[0]
        for m in minima:
            rebound = segment[m:].max() - segment[m]
            assert rebound < 0.02


class TestVentricularPatient:
    def test_lv_pressures(self):
        lv = PatientParams(systolic_mmhg=110.0, diastolic_mmhg=6.0,
                           heart_rate_bpm=80.0)
        patient = VirtualPatient(
            lv, template=ventricular_template(),
            rng=np.random.default_rng(21),
        )
        rec = patient.record(duration_s=10.0, sample_rate_hz=500.0)
        assert rec.systolic_mmhg == pytest.approx(110.0, abs=5.0)
        assert rec.diastolic_mmhg == pytest.approx(6.0, abs=4.0)


class TestArterialLineReference:
    def test_reads_radial_patient(self):
        patient = VirtualPatient(rng=np.random.default_rng(22))
        line = ArterialLineReference()
        reading = line.measure(patient, rng=np.random.default_rng(23))
        assert reading.systolic_mmhg == pytest.approx(120.0, abs=5.0)
        assert reading.diastolic_mmhg == pytest.approx(80.0, abs=5.0)

    def test_reads_ventricular_patient(self):
        """The case the cuff physically cannot do."""
        lv = PatientParams(systolic_mmhg=110.0, diastolic_mmhg=6.0,
                           heart_rate_bpm=80.0)
        patient = VirtualPatient(
            lv, template=ventricular_template(),
            rng=np.random.default_rng(24),
        )
        line = ArterialLineReference()
        reading = line.measure(patient, rng=np.random.default_rng(25))
        assert reading.systolic_mmhg == pytest.approx(110.0, abs=6.0)
        assert reading.diastolic_mmhg == pytest.approx(6.0, abs=4.0)

    def test_more_accurate_than_cuff_on_radial(self):
        from repro.baselines.cuff import OscillometricCuff

        patient = VirtualPatient(rng=np.random.default_rng(26))
        line_reading = ArterialLineReference().measure(
            patient, rng=np.random.default_rng(27)
        )
        patient2 = VirtualPatient(rng=np.random.default_rng(26))
        cuff_reading = OscillometricCuff().measure(
            patient2, rng=np.random.default_rng(27)
        )
        line_err = abs(line_reading.systolic_mmhg - 120.0) + abs(
            line_reading.diastolic_mmhg - 80.0
        )
        cuff_err = abs(cuff_reading.systolic_mmhg - 120.0) + abs(
            cuff_reading.diastolic_mmhg - 80.0
        )
        assert line_err <= cuff_err + 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            ArterialLineReference(duration_s=0.0)
