"""Radial pulse template: morphology and normalization."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physiology.pulse import RadialPulseTemplate


@pytest.fixture(scope="module")
def template() -> RadialPulseTemplate:
    return RadialPulseTemplate()


class TestNormalization:
    def test_range_zero_to_one(self, template):
        # Probe at the template's own grid resolution: interpolation
        # between grid nodes cannot overshoot but can miss the extrema.
        phase = np.linspace(0, 1, 2048, endpoint=False)
        wave = template.evaluate(phase)
        assert wave.min() == pytest.approx(0.0, abs=1e-9)
        assert wave.max() == pytest.approx(1.0, abs=1e-9)
        assert np.all(wave >= 0.0)
        assert np.all(wave <= 1.0)

    def test_periodicity(self, template):
        assert template.evaluate(0.0) == pytest.approx(
            template.evaluate(1.0), abs=1e-6
        )
        assert template.evaluate(0.3) == pytest.approx(
            template.evaluate(1.3), abs=1e-12
        )

    def test_wrapping_negative_phase(self, template):
        assert template.evaluate(-0.2) == pytest.approx(
            template.evaluate(0.8), abs=1e-12
        )


class TestMorphology:
    def test_systolic_peak_early(self, template):
        """Systole peaks in the first quarter of the beat."""
        assert 0.05 < template.systolic_phase < 0.3

    def test_dicrotic_notch_after_peak(self, template):
        assert template.systolic_phase < template.dicrotic_notch_phase < 0.7

    def test_notch_is_local_minimum(self, template):
        notch = template.dicrotic_notch_phase
        eps = 0.02
        v = template.evaluate(np.array([notch - eps, notch, notch + eps]))
        assert v[1] <= v[0]
        assert v[1] <= v[2]

    def test_diastolic_runoff_decreasing(self, template):
        """Late diastole decays toward the end-diastolic minimum."""
        late = np.linspace(0.75, 0.98, 30)
        wave = template.evaluate(late)
        assert np.all(np.diff(wave) < 0.01)  # non-increasing (small slack)

    def test_map_rule_of_thumb(self, template):
        """Beat-average between 1/4 and 1/2 of pulse height: consistent
        with the clinical MAP ~ dia + PP/3 rule."""
        assert 0.2 < template.mean_value() < 0.5


class TestCustomization:
    def test_custom_lobes(self):
        simple = RadialPulseTemplate(
            lobes=((1.0, 0.2, 0.08),), notch=None, decay_rate=0.0
        )
        assert simple.systolic_phase == pytest.approx(0.2, abs=0.02)

    def test_rejects_empty_lobes(self):
        with pytest.raises(ConfigurationError):
            RadialPulseTemplate(lobes=())

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            RadialPulseTemplate(lobes=((1.0, 0.2, 0.0),))

    def test_rejects_small_grid(self):
        with pytest.raises(ConfigurationError):
            RadialPulseTemplate(grid_points=10)
