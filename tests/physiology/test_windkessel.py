"""Two-element Windkessel model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physiology.heart import BeatScheduler
from repro.physiology.windkessel import WindkesselModel


@pytest.fixture(scope="module")
def schedule():
    return BeatScheduler(
        heart_rate_bpm=70.0, hrv_rms_fraction=0.0, rsa_fraction=0.0
    ).generate(30.0, rng=np.random.default_rng(1))


@pytest.fixture(scope="module")
def model() -> WindkesselModel:
    return WindkesselModel()


class TestInflow:
    def test_integrates_to_stroke_volume(self, model, schedule):
        t = np.arange(0, 30.0, 1e-3)
        q = model.inflow_ml_per_s(t, schedule)
        # Total ejected volume / number of complete beats ~ stroke volume.
        beats = int(np.floor(30.0 / (60.0 / 70.0)))
        volume = np.trapezoid(q, t)
        assert volume / beats == pytest.approx(
            model.stroke_volume_ml, rel=0.05
        )

    def test_zero_in_diastole(self, model, schedule):
        t = np.arange(0, 10.0, 1e-3)
        q = model.inflow_ml_per_s(t, schedule)
        _, phase = schedule.beat_phase(t)
        assert np.all(q[phase > model.ejection_fraction] == 0.0)

    def test_nonnegative(self, model, schedule):
        t = np.arange(0, 10.0, 1e-3)
        assert np.all(model.inflow_ml_per_s(t, schedule) >= 0.0)


class TestPressure:
    def test_steady_state_map(self, model, schedule):
        """Mean pressure converges to R * CO (Ohm's law)."""
        t = np.arange(0, 30.0, 1e-3)
        p = model.pressure_mmhg(t, schedule)
        settled = p[t > 15.0]
        expected = model.steady_state_map_mmhg(70.0)
        assert settled.mean() == pytest.approx(expected, rel=0.05)

    def test_physiologic_range(self, model, schedule):
        t = np.arange(0, 30.0, 1e-3)
        p = model.pressure_mmhg(t, schedule)
        settled = p[t > 15.0]
        assert 50.0 < settled.min() < settled.max() < 180.0

    def test_diastolic_decay_exponential(self, model, schedule):
        """During diastole, pressure decays with tau = R*C."""
        t = np.arange(0, 30.0, 1e-3)
        p = model.pressure_mmhg(t, schedule)
        _, phase = schedule.beat_phase(t)
        # Pick a late-diastole window within one beat.
        mask = (t > 20.0) & (t < 20.4) & (phase > 0.5) & (phase < 0.9)
        tt, pp = t[mask], p[mask]
        if tt.size > 20:
            tau_fit = -1.0 / np.polyfit(tt, np.log(pp), 1)[0]
            assert tau_fit == pytest.approx(model.time_constant_s, rel=0.15)

    def test_pulse_pressure_grows_with_stiffness(self, schedule):
        """Lower compliance (stiffer artery) -> larger pulse pressure."""
        t = np.arange(0, 30.0, 1e-3)
        soft = WindkesselModel(compliance_ml_per_mmhg=2.0)
        stiff = WindkesselModel(compliance_ml_per_mmhg=0.8)
        def pp(m):
            p = m.pressure_mmhg(t, schedule)
            settled = p[t > 15.0]
            return settled.max() - settled.min()
        assert pp(stiff) > 1.5 * pp(soft)

    def test_pa_conversion(self, model, schedule):
        t = np.arange(0, 5.0, 1e-3)
        mmhg = model.pressure_mmhg(t, schedule)
        pa = model.pressure_pa(t, schedule)
        assert pa == pytest.approx(mmhg * 133.322, rel=1e-5)

    def test_rejects_nonuniform_grid(self, model, schedule):
        with pytest.raises(ConfigurationError):
            model.pressure_mmhg(np.array([0.0, 0.1, 0.5]), schedule)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            WindkesselModel(resistance_mmhg_s_per_ml=0.0)
        with pytest.raises(ConfigurationError):
            WindkesselModel(ejection_fraction_of_beat=0.95)
