"""Vessel-wall mechanics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.params import TissueParams
from repro.physiology.artery import VesselWall


@pytest.fixture(scope="module")
def wall() -> VesselWall:
    return VesselWall()


class TestLinearRegime:
    def test_linear_for_positive_transmural(self, wall):
        p = np.linspace(100.0, 10e3, 20)
        d = wall.wall_displacement_m(p)
        c = wall.params.wall_compliance_m_per_pa
        assert d == pytest.approx(c * p, rel=1e-9)

    def test_zero_at_zero(self, wall):
        assert wall.wall_displacement_m(0.0)[0] == pytest.approx(0.0)

    def test_pulsatile_gain_matches_compliance(self, wall):
        gain = wall.pulsatile_gain_m_per_pa(5000.0)
        assert gain == pytest.approx(
            wall.params.wall_compliance_m_per_pa, rel=1e-6
        )


class TestCollapse:
    def test_saturates_under_negative_transmural(self, wall):
        d = wall.wall_displacement_m(np.array([-20e3]))
        limit = (
            wall.params.wall_compliance_m_per_pa * -wall.collapse_margin_pa
        )
        assert abs(d[0]) <= limit

    def test_monotone_through_zero(self, wall):
        p = np.linspace(-10e3, 10e3, 101)
        d = wall.wall_displacement_m(p)
        assert np.all(np.diff(d) > 0)

    def test_collapse_reduces_gain(self, wall):
        deep = wall.pulsatile_gain_m_per_pa(-6000.0)
        normal = wall.pulsatile_gain_m_per_pa(5000.0)
        assert deep < 0.5 * normal

    def test_rejects_positive_margin(self):
        with pytest.raises(ConfigurationError):
            VesselWall(collapse_margin_pa=1000.0)


class TestTubeLaw:
    def test_compliance_from_geometry(self):
        wall = VesselWall.from_tube_law(
            radius_m=1.25e-3, wall_thickness_m=0.25e-3, wall_modulus_pa=0.5e6
        )
        expected = (1.25e-3) ** 2 / (0.5e6 * 0.25e-3)
        assert wall.params.wall_compliance_m_per_pa == pytest.approx(expected)

    def test_stiffer_wall_less_compliant(self):
        soft = VesselWall.from_tube_law(1.25e-3, 0.25e-3, 0.3e6)
        stiff = VesselWall.from_tube_law(1.25e-3, 0.25e-3, 1.0e6)
        assert (
            stiff.params.wall_compliance_m_per_pa
            < soft.params.wall_compliance_m_per_pa
        )

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            VesselWall.from_tube_law(0.0, 0.25e-3, 0.5e6)

    def test_preserves_other_params(self):
        base = TissueParams(artery_depth_m=3e-3)
        wall = VesselWall.from_tube_law(
            1.25e-3, 0.25e-3, 0.5e6, params=base
        )
        assert wall.params.artery_depth_m == 3e-3
