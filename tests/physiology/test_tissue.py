"""Tissue transfer to the skin surface."""

import numpy as np
import pytest

from repro.params import TissueParams
from repro.physiology.tissue import TissueTransfer


@pytest.fixture(scope="module")
def tissue() -> TissueTransfer:
    return TissueTransfer()


class TestAttenuation:
    def test_attenuation_below_one(self, tissue):
        assert 0.0 < tissue.depth_attenuation < 1.0

    def test_deeper_artery_attenuates_more(self):
        shallow = TissueTransfer(TissueParams(artery_depth_m=1e-3))
        deep = TissueTransfer(TissueParams(artery_depth_m=4e-3))
        assert deep.depth_attenuation < shallow.depth_attenuation

    def test_larger_artery_couples_better(self):
        small = TissueTransfer(TissueParams(artery_radius_m=1e-3))
        large = TissueTransfer(TissueParams(artery_radius_m=2e-3))
        assert large.depth_attenuation > small.depth_attenuation


class TestLateralProfile:
    def test_peak_on_axis(self, tissue):
        assert tissue.lateral_profile(0.0) == pytest.approx(1.0)

    def test_symmetric(self, tissue):
        x = np.linspace(0, 5e-3, 10)
        assert tissue.lateral_profile(x) == pytest.approx(
            tissue.lateral_profile(-x)
        )

    def test_one_sigma_value(self, tissue):
        s = tissue.params.surface_spread_m
        assert tissue.lateral_profile(s) == pytest.approx(np.exp(-0.5))

    def test_decays_with_offset(self, tissue):
        x = np.linspace(0, 10e-3, 30)
        prof = tissue.lateral_profile(x)
        assert np.all(np.diff(prof) < 0)


class TestSurfaceDisplacement:
    def test_scalar_scalar(self, tissue):
        d = tissue.surface_displacement_m(1e-6, 0.0)
        assert d == pytest.approx(tissue.depth_attenuation * 1e-6)

    def test_time_series_by_offsets(self, tissue):
        wall = np.linspace(0, 1e-6, 5)
        offsets = np.array([0.0, 2.5e-3])
        field = tissue.surface_displacement_m(wall, offsets)
        assert field.shape == (5, 2)
        assert np.all(field[:, 0] >= field[:, 1])

    def test_time_series_scalar_offset(self, tissue):
        wall = np.linspace(0, 1e-6, 5)
        out = tissue.surface_displacement_m(wall, 1e-3)
        assert out.shape == (5,)

    def test_stiffness_positive(self, tissue):
        assert tissue.surface_stiffness_pa_per_m() > 0
