"""Respiratory modulation and baseline wander."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physiology.respiration import RespirationModel


class TestSinusoid:
    def test_amplitude(self):
        model = RespirationModel(rate_bpm=15.0, depth_mmhg=3.0)
        t = np.arange(0, 60.0, 0.01)
        mod = model.modulation_mmhg(t)
        assert mod.max() == pytest.approx(3.0, rel=1e-3)
        assert mod.min() == pytest.approx(-3.0, rel=1e-3)

    def test_frequency(self):
        model = RespirationModel(rate_bpm=12.0, depth_mmhg=1.0)
        t = np.arange(0, 60.0, 0.01)
        mod = model.modulation_mmhg(t)
        # Count zero crossings: 12 cycles/min -> 24 crossings in 60 s.
        crossings = np.sum(np.diff(np.signbit(mod)) != 0)
        assert crossings == pytest.approx(24, abs=1)

    def test_zero_depth(self):
        model = RespirationModel(depth_mmhg=0.0)
        t = np.arange(0, 10.0, 0.01)
        assert np.all(model.modulation_mmhg(t) == 0.0)

    def test_phase_offset(self):
        a = RespirationModel(phase_rad=0.0)
        b = RespirationModel(phase_rad=np.pi)
        t = np.arange(0, 10.0, 0.01)
        assert a.modulation_mmhg(t) == pytest.approx(-b.modulation_mmhg(t))


class TestWander:
    def test_rms_scaling(self, rng):
        model = RespirationModel(depth_mmhg=0.0, wander_mmhg=2.0)
        t = np.arange(0, 600.0, 0.05)
        mod = model.modulation_mmhg(t, rng=rng)
        assert np.std(mod) == pytest.approx(2.0, rel=0.4)

    def test_wander_is_low_frequency(self, rng):
        model = RespirationModel(
            depth_mmhg=0.0, wander_mmhg=1.0, wander_corner_hz=0.05
        )
        t = np.arange(0, 300.0, 0.05)
        mod = model.modulation_mmhg(t, rng=rng)
        psd = np.abs(np.fft.rfft(mod)) ** 2
        freqs = np.fft.rfftfreq(t.size, 0.05)
        low = psd[(freqs > 0.005) & (freqs < 0.05)].mean()
        high = psd[(freqs > 0.5) & (freqs < 2.0)].mean()
        assert low > 30 * high

    def test_wander_needs_uniform_grid(self, rng):
        model = RespirationModel(wander_mmhg=1.0)
        with pytest.raises(ConfigurationError):
            model.modulation_mmhg(np.array([0.0, 0.1, 0.5]), rng=rng)

    def test_rejects_negative_magnitudes(self):
        with pytest.raises(ConfigurationError):
            RespirationModel(depth_mmhg=-1.0)
        with pytest.raises(ConfigurationError):
            RespirationModel(wander_mmhg=-1.0)
