"""Hold-down servo: applanation search."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalQualityError
from repro.params import PASCAL_PER_MMHG
from repro.tonometry.contact import ContactModel
from repro.tonometry.servo import HoldDownServo


@pytest.fixture()
def contact() -> ContactModel:
    return ContactModel(
        mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG
    )


def noisy_oracle(contact, sigma=0.05, seed=3):
    rng = np.random.default_rng(seed)

    def oracle(hold_pa: float) -> float:
        return float(
            contact.transmission(hold_pa) * 40.0
            + sigma * rng.standard_normal()
        )

    return oracle


class TestSearch:
    def test_finds_optimum(self, contact):
        servo = HoldDownServo()
        result = servo.search(noisy_oracle(contact))
        assert result.optimal_hold_down_pa == pytest.approx(
            contact.optimal_hold_down_pa, rel=0.1
        )

    def test_noiseless_search_precise(self, contact):
        servo = HoldDownServo(refine_tolerance_pa=50.0)
        result = servo.search(noisy_oracle(contact, sigma=0.0))
        assert result.optimal_hold_down_pa == pytest.approx(
            contact.optimal_hold_down_pa, rel=0.02
        )

    def test_sweep_recorded(self, contact):
        servo = HoldDownServo(coarse_points=10)
        result = servo.search(noisy_oracle(contact))
        pressures, amplitudes = result.transmission_curve()
        assert pressures.size == 10
        assert amplitudes.size == 10
        # The sweep shows the inverted U: interior max.
        assert 0 < int(np.argmax(amplitudes)) < 9

    def test_no_pulse_raises(self):
        servo = HoldDownServo(min_peak_amplitude=0.5)

        def dead_oracle(_):
            return 0.0

        with pytest.raises(SignalQualityError, match="artery"):
            servo.search(dead_oracle)

    def test_nan_oracle_raises(self):
        servo = HoldDownServo()
        with pytest.raises(SignalQualityError):
            servo.search(lambda _: float("nan"))


class TestTracking:
    def test_climbs_toward_optimum(self, contact):
        servo = HoldDownServo()
        oracle = noisy_oracle(contact, sigma=0.0)
        current = contact.optimal_hold_down_pa * 0.6
        for _ in range(20):
            current = servo.track(oracle, current, step_pa=500.0)
        assert current == pytest.approx(
            contact.optimal_hold_down_pa, rel=0.1
        )

    def test_stays_at_optimum(self, contact):
        servo = HoldDownServo()
        oracle = noisy_oracle(contact, sigma=0.0)
        at_top = contact.optimal_hold_down_pa
        moved = servo.track(oracle, at_top, step_pa=300.0)
        assert abs(moved - at_top) <= 300.0

    def test_respects_bounds(self, contact):
        servo = HoldDownServo(min_pa=5e3, max_pa=10e3)
        oracle = noisy_oracle(contact, sigma=0.0)
        assert servo.track(oracle, 5e3, step_pa=1e4) <= 10e3

    def test_rejects_bad_args(self, contact):
        servo = HoldDownServo()
        with pytest.raises(ConfigurationError):
            servo.track(noisy_oracle(contact), -1.0)


class TestValidation:
    def test_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            HoldDownServo(min_pa=10e3, max_pa=5e3)

    def test_rejects_few_points(self):
        with pytest.raises(ConfigurationError):
            HoldDownServo(coarse_points=2)
