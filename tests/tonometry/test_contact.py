"""Applanation contact model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.params import ContactParams, PASCAL_PER_MMHG
from repro.tonometry.contact import ContactModel


@pytest.fixture(scope="module")
def contact() -> ContactModel:
    return ContactModel()


class TestTransmissionCurve:
    def test_peak_at_optimum(self, contact):
        opt = contact.optimal_hold_down_pa
        sweep = np.linspace(0.2 * opt, 2.5 * opt, 201)
        trans = contact.transmission(sweep)
        peak_at = sweep[np.argmax(trans)]
        assert peak_at == pytest.approx(opt, rel=0.1)

    def test_inverted_u(self, contact):
        opt = contact.optimal_hold_down_pa
        t_low = contact.transmission(0.3 * opt)
        t_opt = contact.transmission(opt)
        t_high = contact.transmission(2.2 * opt)
        assert t_opt > t_low
        assert t_opt > t_high

    def test_zero_at_no_contact(self, contact):
        assert contact.transmission(0.0) == pytest.approx(0.0, abs=1e-6)

    def test_bounded_by_pdms_attenuation(self, contact):
        sweep = np.linspace(0.0, 3 * contact.optimal_hold_down_pa, 100)
        assert np.all(contact.transmission(sweep) <= contact.pdms_attenuation)

    def test_rejects_negative_hold_down(self, contact):
        with pytest.raises(ConfigurationError):
            contact.transmission(-1.0)


class TestPDMS:
    def test_attenuation_in_unit_interval(self, contact):
        assert 0.0 < contact.pdms_attenuation < 1.0

    def test_pdms_much_stiffer_than_tissue(self, contact):
        """The default PDMS barely attenuates — the reason the paper can
        afford the protective layer."""
        assert contact.pdms_attenuation > 0.9

    def test_thicker_pdms_attenuates_more(self):
        thin = ContactModel(contact=ContactParams(pdms_thickness_m=100e-6))
        thick = ContactModel(contact=ContactParams(pdms_thickness_m=2000e-6))
        assert thick.pdms_attenuation < thin.pdms_attenuation


class TestState:
    def test_default_uses_params(self, contact):
        state = contact.state()
        assert state.hold_down_pa == contact.contact.hold_down_pa

    def test_static_pressure_subtracts_backpressure(self, contact):
        state = contact.state(10e3)
        assert state.static_membrane_pressure_pa == pytest.approx(
            10e3 - contact.contact.backpressure_pa
        )

    def test_over_pressed_flag(self, contact):
        assert contact.state(2.0 * contact.optimal_hold_down_pa).is_over_pressed
        assert not contact.state(contact.optimal_hold_down_pa).is_over_pressed

    def test_optimum_is_map(self):
        map_pa = 95.0 * PASCAL_PER_MMHG
        model = ContactModel(mean_arterial_pressure_pa=map_pa)
        assert model.optimal_hold_down_pa == pytest.approx(map_pa)

    def test_rejects_bad_map(self):
        with pytest.raises(ConfigurationError):
            ContactModel(mean_arterial_pressure_pa=0.0)
