"""End-to-end tonometric coupling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mems.geometry import ArrayGeometry
from repro.params import ArrayParams
from repro.tonometry.contact import ContactModel
from repro.tonometry.coupling import TonometricCoupling
from repro.tonometry.placement import ArrayPlacement


@pytest.fixture(scope="module")
def coupling() -> TonometricCoupling:
    return TonometricCoupling(
        ArrayGeometry(ArrayParams()),
        ContactModel(),
        contact_heterogeneity=0.0,
    )


class TestPressureField:
    def test_shape(self, coupling):
        arterial = np.full(100, coupling.contact.map_pa)
        field = coupling.element_pressures_pa(arterial)
        assert field.shape == (100, 4)

    def test_at_map_field_is_static(self, coupling):
        arterial = np.full(50, coupling.contact.map_pa)
        field = coupling.element_pressures_pa(arterial)
        state = coupling.contact.state()
        assert field == pytest.approx(
            state.static_membrane_pressure_pa * np.ones_like(field)
        )

    def test_pulsatile_component_scales_with_gain(self, coupling):
        delta = 1000.0
        arterial = coupling.contact.map_pa + np.array([0.0, delta])
        field = coupling.element_pressures_pa(arterial)
        gains = coupling.effective_gain()
        swing = field[1] - field[0]
        assert swing == pytest.approx(gains * delta)

    def test_rejects_2d_input(self, coupling):
        with pytest.raises(ConfigurationError):
            coupling.element_pressures_pa(np.zeros((10, 2)))

    def test_hold_down_override(self, coupling):
        arterial = np.full(10, coupling.contact.map_pa + 1000.0)
        strong = coupling.element_pressures_pa(
            arterial, hold_down_pa=coupling.contact.optimal_hold_down_pa
        )
        weak = coupling.element_pressures_pa(arterial, hold_down_pa=500.0)
        # Weak hold-down: less static pressure and less pulse.
        assert weak.mean() < strong.mean()


class TestHeterogeneity:
    def test_zero_heterogeneity_uniform(self, coupling):
        assert coupling.contact_quality == pytest.approx(np.ones(4))

    def test_heterogeneity_differentiates_elements(self):
        het = TonometricCoupling(
            ArrayGeometry(ArrayParams()),
            ContactModel(),
            contact_heterogeneity=0.3,
            rng=np.random.default_rng(8),
        )
        assert het.contact_quality.std() > 0.01
        assert np.all(het.contact_quality <= 1.0)
        assert np.all(het.contact_quality >= 0.0)

    def test_reproducible_draw(self):
        a = TonometricCoupling(
            ArrayGeometry(ArrayParams()), ContactModel(),
            rng=np.random.default_rng(5),
        )
        b = TonometricCoupling(
            ArrayGeometry(ArrayParams()), ContactModel(),
            rng=np.random.default_rng(5),
        )
        assert a.contact_quality == pytest.approx(b.contact_quality)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            TonometricCoupling(
                ArrayGeometry(ArrayParams()),
                ContactModel(),
                contact_heterogeneity=-0.1,
            )


class TestPlacementTransfer:
    def test_with_placement_preserves_quality_draw(self):
        base = TonometricCoupling(
            ArrayGeometry(ArrayParams()), ContactModel(),
            contact_heterogeneity=0.3, rng=np.random.default_rng(9),
        )
        moved = base.with_placement(ArrayPlacement(lateral_offset_m=1e-3))
        assert moved.contact_quality == pytest.approx(base.contact_quality)
        assert moved.placement.lateral_offset_m == 1e-3

    def test_offset_reduces_gain(self, coupling):
        centered = coupling.effective_gain()
        moved = coupling.with_placement(
            ArrayPlacement(lateral_offset_m=4e-3)
        ).effective_gain()
        assert np.all(moved < centered)


class TestScanSegments:
    def test_rows_match_full_field_diagonal(self, coupling):
        """Row k must be bit-identical to the dwell window of column k in
        the full field — the memory-lean path may not drift."""
        dwell = 25
        rng = np.random.default_rng(13)
        arterial = coupling.contact.map_pa + 800.0 * rng.standard_normal(
            dwell * 4
        )
        segments = coupling.scan_pressure_segments(arterial, dwell)
        field = coupling.element_pressures_pa(arterial)
        assert segments.shape == (4, dwell)
        for k in range(4):
            assert np.array_equal(
                segments[k], field[k * dwell : (k + 1) * dwell, k]
            )

    def test_hold_down_override_forwarded(self, coupling):
        arterial = np.full(8, coupling.contact.map_pa + 500.0)
        weak = coupling.scan_pressure_segments(
            arterial, 2, hold_down_pa=500.0
        )
        strong = coupling.scan_pressure_segments(arterial, 2)
        assert weak.mean() < strong.mean()

    def test_validation(self, coupling):
        with pytest.raises(ConfigurationError):
            coupling.scan_pressure_segments(np.zeros((4, 4)), 2)
        with pytest.raises(ConfigurationError):
            coupling.scan_pressure_segments(np.zeros(8), 0)
        with pytest.raises(ConfigurationError):
            coupling.scan_pressure_segments(np.zeros(7), 2)
