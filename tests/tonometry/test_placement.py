"""Array placement over the artery."""

import numpy as np
import pytest

from repro.mems.geometry import ArrayGeometry
from repro.params import ArrayParams
from repro.physiology.tissue import TissueTransfer
from repro.tonometry.placement import ArrayPlacement, placement_sweep


@pytest.fixture(scope="module")
def geometry() -> ArrayGeometry:
    return ArrayGeometry(ArrayParams())


@pytest.fixture(scope="module")
def tissue() -> TissueTransfer:
    return TissueTransfer()


class TestOffsets:
    def test_centered_placement_symmetric(self, geometry):
        offs = ArrayPlacement().element_transverse_offsets_m(geometry)
        assert sorted(offs) == pytest.approx([-75e-6, -75e-6, 75e-6, 75e-6])

    def test_lateral_offset_shifts_all(self, geometry):
        base = ArrayPlacement().element_transverse_offsets_m(geometry)
        moved = ArrayPlacement(
            lateral_offset_m=1e-3
        ).element_transverse_offsets_m(geometry)
        assert moved == pytest.approx(base + 1e-3)

    def test_rotation_90deg_swaps_axes(self, geometry):
        rotated = ArrayPlacement(
            rotation_rad=np.pi / 2
        ).element_transverse_offsets_m(geometry)
        # After 90 deg rotation, transverse offsets come from y coords.
        assert sorted(rotated) == pytest.approx(
            [-75e-6, -75e-6, 75e-6, 75e-6]
        )

    def test_perturbed(self):
        p = ArrayPlacement(lateral_offset_m=1e-3).perturbed(0.5e-3, 0.1)
        assert p.lateral_offset_m == pytest.approx(1.5e-3)
        assert p.rotation_rad == pytest.approx(0.1)


class TestWeights:
    def test_centered_weights_near_unity(self, geometry, tissue):
        w = ArrayPlacement().coupling_weights(geometry, tissue)
        assert np.all(w > 0.99)  # 75 um << 2.5 mm spread

    def test_far_placement_low_weights(self, geometry, tissue):
        w = ArrayPlacement(lateral_offset_m=8e-3).coupling_weights(
            geometry, tissue
        )
        assert np.all(w < 0.01)

    def test_offset_orders_columns(self, geometry, tissue):
        """With the array shifted +x, the -x column is closer to the
        artery (at x=0 in patient frame... the artery is at transverse
        offset 0, elements sit at offset + center) so it couples better."""
        w = ArrayPlacement(lateral_offset_m=1e-3).coupling_weights(
            geometry, tissue
        )
        # Elements 0, 2 are the -x column (offset 1e-3 - 75e-6).
        assert w[0] > w[1]
        assert w[2] > w[3]


class TestSweep:
    def test_sweep_shape(self, geometry, tissue):
        offsets = np.linspace(-2e-3, 2e-3, 11)
        out = placement_sweep(geometry, tissue, offsets)
        assert out.shape == (11, 4)

    def test_sweep_symmetric(self, geometry, tissue):
        offsets = np.linspace(-2e-3, 2e-3, 11)
        out = placement_sweep(geometry, tissue, offsets)
        best = out.max(axis=1)
        assert best == pytest.approx(best[::-1], rel=1e-9)

    def test_best_weight_degrades_slowly(self, geometry, tissue):
        """The array's selling point: at 1 mm misplacement, the best
        element still couples > 90 %."""
        out = placement_sweep(geometry, tissue, np.array([0.0, 1e-3]))
        assert out[1].max() > 0.9

    def test_rejects_2d_offsets(self, geometry, tissue):
        import pytest as _pytest
        from repro.errors import ConfigurationError

        with _pytest.raises(ConfigurationError):
            placement_sweep(geometry, tissue, np.zeros((3, 2)))
