"""Fixed-point arithmetic helpers."""

import numpy as np
import pytest

from repro.dsp.fixed_point import (
    QFormat,
    check_overflow,
    cic_register_width,
    required_bits_for_magnitude,
    saturate,
    wrap_twos_complement,
)
from repro.errors import ConfigurationError, FixedPointOverflowError


class TestWrap:
    def test_identity_in_range(self):
        x = np.array([-128, -1, 0, 1, 127])
        assert np.array_equal(wrap_twos_complement(x, 8), x)

    def test_wraps_past_top(self):
        assert wrap_twos_complement(np.array([128]), 8)[0] == -128
        assert wrap_twos_complement(np.array([129]), 8)[0] == -127

    def test_wraps_past_bottom(self):
        assert wrap_twos_complement(np.array([-129]), 8)[0] == 127

    def test_periodicity(self):
        x = np.arange(-10, 10)
        assert np.array_equal(
            wrap_twos_complement(x + 256, 8), wrap_twos_complement(x, 8)
        )

    def test_wrap_commutes_with_addition(self):
        """wrap(a+b) == wrap(wrap(a)+b): the property the CIC relies on."""
        rng = np.random.default_rng(3)
        a = rng.integers(-10**9, 10**9, 100)
        b = rng.integers(-10**9, 10**9, 100)
        bits = 16
        assert np.array_equal(
            wrap_twos_complement(a + b, bits),
            wrap_twos_complement(wrap_twos_complement(a, bits) + b, bits),
        )

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            wrap_twos_complement(np.array([0]), 0)


class TestSaturate:
    def test_clamps_both_sides(self):
        x = np.array([-1000, -128, 0, 127, 1000])
        out = saturate(x, 8)
        assert out.tolist() == [-128, -128, 0, 127, 127]

    def test_identity_in_range(self):
        x = np.array([-5, 0, 5])
        assert np.array_equal(saturate(x, 8), x)


class TestCheckOverflow:
    def test_passes_in_range(self):
        x = np.array([-128, 127])
        assert np.array_equal(check_overflow(x, 8), x)

    def test_raises_out_of_range(self):
        with pytest.raises(FixedPointOverflowError):
            check_overflow(np.array([128]), 8)

    def test_empty_array_ok(self):
        check_overflow(np.zeros(0, dtype=np.int64), 8)


class TestQFormat:
    def test_scale(self):
        q = QFormat(int_bits=1, frac_bits=14)
        assert q.scale == pytest.approx(2.0**-14)
        assert q.total_bits == 16

    def test_round_trip_exact_values(self):
        q = QFormat(int_bits=3, frac_bits=4)
        values = np.array([0.0, 0.25, -1.5, 3.0625])
        assert np.array_equal(q.quantize(values), values)

    def test_rounding(self):
        q = QFormat(int_bits=3, frac_bits=0)
        assert q.quantize(np.array([1.4]))[0] == pytest.approx(1.0)
        assert q.quantize(np.array([1.6]))[0] == pytest.approx(2.0)

    def test_saturation_policy(self):
        q = QFormat(int_bits=1, frac_bits=2)  # range [-2, 1.75]
        assert q.quantize(np.array([5.0]))[0] == pytest.approx(q.max_value)
        assert q.quantize(np.array([-5.0]))[0] == pytest.approx(q.min_value)

    def test_raise_policy(self):
        q = QFormat(int_bits=1, frac_bits=2)
        with pytest.raises(FixedPointOverflowError):
            q.quantize_to_int(np.array([5.0]), overflow="raise")

    def test_unknown_policy(self):
        q = QFormat(int_bits=1, frac_bits=2)
        with pytest.raises(ConfigurationError):
            q.quantize_to_int(np.array([0.0]), overflow="bogus")

    def test_quantization_noise_power(self):
        q = QFormat(int_bits=0, frac_bits=11)
        assert q.quantization_noise_power() == pytest.approx(
            (2.0**-11) ** 2 / 12.0
        )

    def test_max_error_half_lsb(self):
        q = QFormat(int_bits=2, frac_bits=6)
        rng = np.random.default_rng(9)
        x = rng.uniform(-3.9, 3.9, 1000)
        err = np.abs(q.quantize(x) - x)
        assert err.max() <= q.scale / 2.0 + 1e-15


class TestWidths:
    def test_required_bits(self):
        assert required_bits_for_magnitude(0) == 1
        assert required_bits_for_magnitude(1) == 2
        assert required_bits_for_magnitude(127) == 8
        assert required_bits_for_magnitude(128) == 9

    def test_cic_register_width_paper_config(self):
        # order 3, R 32, 2-bit input: 3*5 + 2 = 17 bits.
        assert cic_register_width(2, 3, 32) == 17

    def test_cic_register_width_full_osr(self):
        # order 3, R 128: 3*7 + 2 = 23.
        assert cic_register_width(2, 3, 128) == 23

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            cic_register_width(0, 3, 32)
        with pytest.raises(ConfigurationError):
            required_bits_for_magnitude(-1)


class TestInt16Rails:
    """The FPGA word path clamps to the asymmetric i16 range before
    framing; silent astype() wraparound is the bug these rails pin."""

    def test_positive_rail_is_32767(self):
        out = saturate(np.array([32767, 32768, 40000, 10**9]), 16)
        assert out.tolist() == [32767, 32767, 32767, 32767]

    def test_negative_rail_is_minus_32768(self):
        out = saturate(np.array([-32768, -32769, -40000, -(10**9)]), 16)
        assert out.tolist() == [-32768, -32768, -32768, -32768]

    def test_rails_are_asymmetric(self):
        # Two's complement: |min| = max + 1.
        out = saturate(np.array([-32768, 32767]), 16)
        assert out[0] == -(out[1] + 1)

    def test_saturate_differs_from_wrap_past_rail(self):
        x = np.array([40000])
        assert saturate(x, 16)[0] == 32767
        assert wrap_twos_complement(x, 16)[0] == 40000 - 65536
