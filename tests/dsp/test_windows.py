"""Window metadata used by the SNR accounting."""

import numpy as np
import pytest

from repro.dsp.windows import get_window
from repro.errors import ConfigurationError


class TestCatalog:
    @pytest.mark.parametrize(
        "name", ["rectangular", "hann", "blackmanharris", "flattop"]
    )
    def test_lengths(self, name):
        spec = get_window(name, 256)
        assert spec.values.size == 256

    def test_unknown_window(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            get_window("kaiser", 256)

    def test_too_short(self):
        with pytest.raises(ConfigurationError):
            get_window("hann", 4)

    def test_case_insensitive(self):
        assert get_window("HANN", 64).name == "hann"


class TestMetadata:
    def test_rectangular_reference_values(self):
        spec = get_window("rectangular", 1024)
        assert spec.coherent_gain == pytest.approx(1.0)
        assert spec.noise_equivalent_bandwidth_bins == pytest.approx(1.0)
        assert spec.half_leakage_bins == 0

    def test_hann_enbw(self):
        spec = get_window("hann", 4096)
        assert spec.noise_equivalent_bandwidth_bins == pytest.approx(1.5, rel=1e-3)

    def test_hann_coherent_gain(self):
        spec = get_window("hann", 4096)
        assert spec.coherent_gain == pytest.approx(0.5, rel=1e-3)

    def test_blackmanharris_enbw(self):
        spec = get_window("blackmanharris", 4096)
        assert spec.noise_equivalent_bandwidth_bins == pytest.approx(2.0, rel=0.01)

    def test_processing_gain_ordering(self):
        """Stronger sidelobe suppression costs more ENBW."""
        rect = get_window("rectangular", 1024)
        hann = get_window("hann", 1024)
        bh = get_window("blackmanharris", 1024)
        ft = get_window("flattop", 1024)
        assert (
            rect.processing_gain_db
            < hann.processing_gain_db
            < bh.processing_gain_db
            < ft.processing_gain_db
        )

    def test_leakage_containment(self):
        """A coherent windowed tone's power outside the declared skirt is
        negligible — the property the SNR bookkeeping rests on."""
        n = 4096
        for name in ("hann", "blackmanharris"):
            spec = get_window(name, n)
            k = 333  # exact bin
            t = np.arange(n)
            x = np.sin(2 * np.pi * k * t / n)
            fft = np.abs(np.fft.rfft(x * spec.values)) ** 2
            skirt = slice(k - spec.half_leakage_bins, k + spec.half_leakage_bins + 1)
            inside = fft[skirt].sum()
            outside = fft.sum() - inside
            assert outside / inside < 1e-6
