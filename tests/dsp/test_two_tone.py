"""Two-tone intermodulation analysis."""

import numpy as np
import pytest

from repro.dsp.spectrum import analyze_two_tone, coherent_tone_frequency
from repro.errors import ConfigurationError

FS = 1000.0
N = 8192


def two_tone(a=0.4, k2=0.0, k3=0.0, noise=1e-6, seed=5):
    """x + k2 x^2 + k3 x^3 applied to a two-tone signal."""
    rng = np.random.default_rng(seed)
    f1 = coherent_tone_frequency(110.0, FS, N)
    f2 = coherent_tone_frequency(170.0, FS, N)
    t = np.arange(N) / FS
    x = a * np.sin(2 * np.pi * f1 * t) + a * np.sin(2 * np.pi * f2 * t)
    y = x + k2 * x**2 + k3 * x**3 + noise * rng.standard_normal(N)
    return y, f1, f2


class TestLinearSystem:
    def test_clean_signal_low_imd(self):
        y, f1, f2 = two_tone()
        a = analyze_two_tone(y, FS, f1, f2)
        assert a.imd3_db < -80.0
        assert a.imd2_db < -80.0


class TestNonlinearity:
    def test_cubic_raises_imd3(self):
        y, f1, f2 = two_tone(k3=0.01)
        a = analyze_two_tone(y, FS, f1, f2)
        # IMD3 product amplitude = (3/4) k3 a^3; relative to tone a:
        # 20 log10(0.75 * 0.01 * 0.4^2) = ~ -58 dB.
        expected = 20 * np.log10(0.75 * 0.01 * 0.4**2)
        assert a.imd3_db == pytest.approx(expected, abs=2.0)

    def test_quadratic_raises_imd2(self):
        y, f1, f2 = two_tone(k2=0.01)
        a = analyze_two_tone(y, FS, f1, f2)
        # IMD2 product amplitude = k2 a^2; relative: 20log10(k2*a) = -48.
        expected = 20 * np.log10(0.01 * 0.4)
        assert a.imd2_db == pytest.approx(expected, abs=2.0)

    def test_cubic_does_not_fake_imd2(self):
        y, f1, f2 = two_tone(k3=0.01)
        a = analyze_two_tone(y, FS, f1, f2)
        assert a.imd2_db < a.imd3_db - 15.0

    def test_imd_grows_with_nonlinearity(self):
        y1, f1, f2 = two_tone(k3=0.003)
        y2, _, _ = two_tone(k3=0.03)
        a1 = analyze_two_tone(y1, FS, f1, f2)
        a2 = analyze_two_tone(y2, FS, f1, f2)
        assert a2.imd3_db == pytest.approx(a1.imd3_db + 20.0, abs=2.0)


class TestChainIMD:
    def test_sigma_delta_chain_imd_low(self):
        """The production chain is highly linear: IMD3 below -60 dBc for
        a two-tone at 1/3 full scale each."""
        from repro.core.chain import ReadoutChain
        from repro.params import SystemParams

        params = SystemParams()
        out_rate = 1000.0
        n_out = 4096
        f1 = coherent_tone_frequency(110.0, out_rate, n_out)
        f2 = coherent_tone_frequency(170.0, out_rate, n_out)
        fs = params.modulator.sampling_rate_hz
        n_mod = (n_out + 64) * params.modulator.osr
        t = np.arange(n_mod) / fs
        vref = params.modulator.vref_v
        stimulus = (
            0.33 * vref * np.sin(2 * np.pi * f1 * t)
            + 0.33 * vref * np.sin(2 * np.pi * f2 * t)
        )
        chain = ReadoutChain(params, rng=np.random.default_rng(91))
        rec = chain.record_voltage(stimulus)
        codes = rec.values[64 : 64 + n_out]
        a = analyze_two_tone(codes, out_rate, f1, f2)
        assert a.imd3_db < -60.0


class TestValidation:
    def test_rejects_bad_frequencies(self):
        y, f1, f2 = two_tone()
        with pytest.raises(ConfigurationError):
            analyze_two_tone(y, FS, f2, f1)  # swapped
        with pytest.raises(ConfigurationError):
            analyze_two_tone(y, FS, 100.0, 600.0)  # beyond Nyquist

    def test_summary(self):
        y, f1, f2 = two_tone(k3=0.01)
        assert "IMD3" in analyze_two_tone(y, FS, f1, f2).summary()
