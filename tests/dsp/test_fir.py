"""FIR design and bit-true decimating filter."""

import numpy as np
import pytest

from repro.dsp.cic import CICDecimator
from repro.dsp.fir import FIRDecimator, design_compensation_fir
from repro.dsp.fixed_point import QFormat
from repro.errors import ConfigurationError

FIR_RATE = 4000.0  # CIC output rate for the paper's 32/4 split


@pytest.fixture(scope="module")
def coeffs() -> np.ndarray:
    cic = CICDecimator(order=3, decimation=32)
    return design_compensation_fir(32, FIR_RATE, 500.0, cic=cic)


class TestDesign:
    def test_tap_count(self, coeffs):
        assert coeffs.size == 32

    def test_unity_dc_gain(self, coeffs):
        assert coeffs.sum() == pytest.approx(1.0, rel=1e-9)

    def test_passband_compensates_droop(self, coeffs):
        """Cascade CIC x FIR flat within 0.5 dB to 300 Hz; the soft edge
        of a 32-tap design may droop up to 2 dB by 400 Hz."""
        cic = CICDecimator(order=3, decimation=32)
        fir = FIRDecimator(coeffs, decimation=4)
        f = np.linspace(10.0, 300.0, 30)
        cascade = cic.frequency_response(f, 128e3) * fir.frequency_response(
            f, FIR_RATE, quantized=False
        )
        ripple_db = 20 * np.log10(cascade)
        assert np.max(np.abs(ripple_db)) < 0.5
        edge = cic.frequency_response(np.array([400.0]), 128e3) * (
            fir.frequency_response(np.array([400.0]), FIR_RATE, quantized=False)
        )
        assert abs(20 * np.log10(edge[0])) < 2.0

    def test_uncompensated_cascade_droops_more(self, coeffs):
        """Without droop compensation the cascade sags visibly by 400 Hz
        — the reason the second stage compensates at all."""
        cic = CICDecimator(order=3, decimation=32)
        plain = design_compensation_fir(32, FIR_RATE, 500.0, cic=None)
        fir_plain = FIRDecimator(plain, decimation=4)
        fir_comp = FIRDecimator(coeffs, decimation=4)
        f = np.array([400.0])
        mag_plain = cic.frequency_response(f, 128e3) * (
            fir_plain.frequency_response(f, FIR_RATE, quantized=False)
        )
        mag_comp = cic.frequency_response(f, 128e3) * (
            fir_comp.frequency_response(f, FIR_RATE, quantized=False)
        )
        assert mag_comp[0] > mag_plain[0]

    def test_stopband_attenuation(self, coeffs):
        """>= 28 dB above 700 Hz (what 32 hamming taps can deliver)."""
        fir = FIRDecimator(coeffs, decimation=4)
        f = np.linspace(700.0, 1900.0, 60)
        mag = fir.frequency_response(f, FIR_RATE, quantized=False)
        assert 20 * np.log10(mag.max()) < -28.0

    def test_symmetric_linear_phase(self, coeffs):
        assert coeffs == pytest.approx(coeffs[::-1], abs=1e-12)

    def test_without_cic_flat_passband(self):
        flat = design_compensation_fir(32, FIR_RATE, 500.0, cic=None)
        fir = FIRDecimator(flat, decimation=4)
        f = np.linspace(10.0, 350.0, 30)
        mag = fir.frequency_response(f, FIR_RATE, quantized=False)
        assert np.max(np.abs(20 * np.log10(mag))) < 0.5

    def test_rejects_cutoff_beyond_nyquist(self):
        with pytest.raises(ConfigurationError):
            design_compensation_fir(32, FIR_RATE, 2100.0)

    def test_rejects_too_few_taps(self):
        with pytest.raises(ConfigurationError):
            design_compensation_fir(4, FIR_RATE, 500.0)


class TestBitTrueFiltering:
    def test_matches_float_convolution(self, coeffs):
        rng = np.random.default_rng(21)
        x = rng.integers(-(2**14), 2**14, 512)
        fir = FIRDecimator(coeffs, decimation=1)
        out = fir.process(x)
        # Float reference with zero-padded history and quantized coeffs.
        qc = fir.quantized_coefficients
        padded = np.concatenate([np.zeros(31), x.astype(float)])
        expected = np.convolve(padded, qc)[31 : 31 + x.size]
        got = out.astype(float) * fir.coeff_format.scale
        assert got == pytest.approx(expected, rel=1e-12, abs=1e-6)

    def test_decimation_keeps_every_mth(self, coeffs):
        rng = np.random.default_rng(22)
        x = rng.integers(-1000, 1000, 256)
        full = FIRDecimator(coeffs, decimation=1)
        deci = FIRDecimator(coeffs, decimation=4)
        assert np.array_equal(deci.process(x), full.process(x)[::4])

    @pytest.mark.parametrize("chunk", [1, 3, 17, 100])
    def test_streaming_equals_monolithic(self, coeffs, chunk):
        rng = np.random.default_rng(23)
        x = rng.integers(-(2**14), 2**14, 400)
        whole = FIRDecimator(coeffs, decimation=4)
        expected = whole.process(x)
        stream = FIRDecimator(coeffs, decimation=4)
        pieces = [
            stream.process(x[i : i + chunk]) for i in range(0, x.size, chunk)
        ]
        assert np.array_equal(np.concatenate(pieces), expected)

    def test_reset(self, coeffs):
        x = np.arange(100, dtype=np.int64)
        fir = FIRDecimator(coeffs, decimation=4)
        a = fir.process(x)
        fir.reset()
        b = fir.process(x)
        assert np.array_equal(a, b)

    def test_rejects_float_input(self, coeffs):
        fir = FIRDecimator(coeffs)
        with pytest.raises(ConfigurationError):
            fir.process(np.ones(10))

    def test_empty_input(self, coeffs):
        fir = FIRDecimator(coeffs)
        assert fir.process(np.zeros(0, dtype=np.int64)).size == 0

    def test_accumulator_bound(self, coeffs):
        """Worst-case MAC fits comfortably in int64."""
        fir = FIRDecimator(coeffs, decimation=4)
        worst = np.sum(np.abs(fir.coefficients_int)) * (2**17)
        assert worst < 2**62


class TestCoefficientQuantization:
    def test_quantization_error_bounded(self, coeffs):
        fir = FIRDecimator(coeffs)
        err = np.abs(fir.quantized_coefficients - coeffs)
        assert err.max() <= fir.coeff_format.scale / 2 + 1e-15

    def test_rejects_oversized_coefficients(self):
        big = np.array([3.0, 0.1, 0.1, 0.1])
        with pytest.raises(ConfigurationError, match="magnitude"):
            FIRDecimator(big, coeff_format=QFormat(int_bits=1, frac_bits=14))

    def test_quantized_response_close_to_ideal(self, coeffs):
        fir = FIRDecimator(coeffs)
        f = np.linspace(10.0, 450.0, 20)
        ideal = fir.frequency_response(f, FIR_RATE, quantized=False)
        quant = fir.frequency_response(f, FIR_RATE, quantized=True)
        assert np.max(np.abs(ideal - quant)) < 1e-3
