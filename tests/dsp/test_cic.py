"""CIC decimator: moving-average equivalence, streaming, response."""

import numpy as np
import pytest

from repro.dsp.cic import CICDecimator
from repro.errors import ConfigurationError


def reference_cic(x: np.ndarray, order: int, r: int) -> np.ndarray:
    """Brute-force reference: H(z) = ((1 - z^-R)/(1 - z^-1))^N applied as
    N cascaded length-R moving sums, then decimation by R."""
    y = x.astype(np.int64)
    for _ in range(order):
        kernel = np.ones(r, dtype=np.int64)
        y = np.convolve(y, kernel)[: x.size]
    return y[::r]


class TestEquivalence:
    @pytest.mark.parametrize("order,r", [(1, 4), (2, 8), (3, 32), (3, 128)])
    def test_matches_moving_average_cascade(self, order, r):
        rng = np.random.default_rng(5)
        x = rng.choice([-1, 1], size=r * 40).astype(np.int64)
        cic = CICDecimator(order=order, decimation=r, input_bits=2)
        out = cic.process(x)
        ref = reference_cic(x, order, r)
        n = min(out.size, ref.size)
        assert np.array_equal(out[:n], ref[:n])

    def test_dc_gain(self):
        cic = CICDecimator(order=3, decimation=32, input_bits=2)
        x = np.ones(32 * 20, dtype=np.int64)
        out = cic.process(x)
        # After the filter fills (order * R samples), output = R^N.
        assert out[-1] == cic.dc_gain
        assert cic.dc_gain == 32**3

    def test_negative_dc(self):
        cic = CICDecimator(order=3, decimation=16, input_bits=2)
        out = cic.process(-np.ones(16 * 20, dtype=np.int64))
        assert out[-1] == -cic.dc_gain


class TestStreaming:
    @pytest.mark.parametrize("chunk", [1, 7, 32, 100, 1000])
    def test_chunked_equals_monolithic(self, chunk):
        rng = np.random.default_rng(11)
        x = rng.choice([-1, 1], size=3200).astype(np.int64)
        whole = CICDecimator(order=3, decimation=32, input_bits=2)
        expected = whole.process(x)
        chunked = CICDecimator(order=3, decimation=32, input_bits=2)
        pieces = [
            chunked.process(x[i : i + chunk]) for i in range(0, x.size, chunk)
        ]
        assert np.array_equal(np.concatenate(pieces), expected)

    def test_reset_restarts(self):
        x = np.ones(320, dtype=np.int64)
        cic = CICDecimator(order=3, decimation=32, input_bits=2)
        first = cic.process(x)
        cic.reset()
        second = cic.process(x)
        assert np.array_equal(first, second)

    def test_empty_chunk(self):
        cic = CICDecimator()
        assert cic.process(np.zeros(0, dtype=np.int64)).size == 0

    def test_float_input_rejected(self):
        cic = CICDecimator()
        with pytest.raises(ConfigurationError, match="integer or boolean"):
            cic.process(np.ones(10))

    def test_huge_chunk_recursion(self):
        """Chunks beyond the int64-safety bound recurse transparently."""
        cic = CICDecimator(order=3, decimation=32, input_bits=2)
        cic_ref = CICDecimator(order=3, decimation=32, input_bits=2)
        rng = np.random.default_rng(2)
        x = rng.choice([-1, 1], size=3200).astype(np.int64)
        # Force tiny max chunk by monkey-patching register width upward is
        # invasive; instead simply verify a moderately large input equals
        # chunked processing (the recursion path shares the same state
        # logic).
        out_a = cic.process(x)
        out_b = np.concatenate(
            [cic_ref.process(x[:1600]), cic_ref.process(x[1600:])]
        )
        assert np.array_equal(out_a, out_b)


class TestInputDtypes:
    """The decimator takes the bitstream in +/-1, 0/1 or raw bool form."""

    def test_zero_one_int_input(self):
        rng = np.random.default_rng(21)
        bits01 = rng.integers(0, 2, size=3200)
        pm1 = 2 * bits01 - 1
        out01 = CICDecimator(order=3, decimation=32).process(bits01)
        out_pm1 = CICDecimator(order=3, decimation=32).process(pm1)
        # Linearity: y(0/1) = (y(+/-1) + y(all-ones)) / 2.
        ones = CICDecimator(order=3, decimation=32).process(
            np.ones(3200, dtype=np.int64)
        )
        assert np.array_equal(2 * out01, out_pm1 + ones)

    def test_bool_input_matches_int(self):
        rng = np.random.default_rng(22)
        flags = rng.integers(0, 2, size=3200).astype(bool)
        out_bool = CICDecimator(order=3, decimation=32).process(flags)
        out_int = CICDecimator(order=3, decimation=32).process(
            flags.astype(np.int64)
        )
        assert out_bool.dtype == np.int64
        assert np.array_equal(out_bool, out_int)

    @pytest.mark.parametrize("dtype", [np.int8, np.uint8, np.int16, np.int64])
    def test_narrow_integer_dtypes(self, dtype):
        x = np.array([1, 0, 1, 1] * 64, dtype=dtype)
        out = CICDecimator(order=3, decimation=16).process(x)
        ref = CICDecimator(order=3, decimation=16).process(x.astype(np.int64))
        assert np.array_equal(out, ref)


class TestFrequencyResponse:
    def test_unity_at_dc(self):
        cic = CICDecimator(order=3, decimation=32)
        mag = cic.frequency_response(np.array([0.0]), 128e3)
        assert mag[0] == pytest.approx(1.0)

    def test_nulls_at_output_rate_multiples(self):
        cic = CICDecimator(order=3, decimation=32)
        fs = 128e3
        nulls = np.array([fs / 32, 2 * fs / 32])
        mag = cic.frequency_response(nulls, fs)
        assert np.all(mag < 1e-9)

    def test_monotone_droop_in_passband(self):
        cic = CICDecimator(order=3, decimation=32)
        f = np.linspace(0.0, 1000.0, 50)
        mag = cic.frequency_response(f, 128e3)
        assert np.all(np.diff(mag) < 0)

    def test_droop_grows_with_order(self):
        f = 500.0
        droop1 = CICDecimator(order=1, decimation=32).passband_droop_db(f, 128e3)
        droop3 = CICDecimator(order=3, decimation=32).passband_droop_db(f, 128e3)
        assert droop3 == pytest.approx(3 * droop1, rel=1e-6)

    def test_sinc_shape(self):
        """|H| matches |sin(pi f R/fs) / (R sin(pi f/fs))|^N analytically."""
        cic = CICDecimator(order=3, decimation=16)
        fs = 128e3
        f = np.array([315.0, 997.0, 2111.0])
        x = np.pi * f / fs
        expected = np.abs(np.sin(16 * x) / (16 * np.sin(x))) ** 3
        assert cic.frequency_response(f, fs) == pytest.approx(expected)


class TestValidation:
    def test_rejects_bad_order(self):
        with pytest.raises(ConfigurationError):
            CICDecimator(order=0)

    def test_rejects_bad_decimation(self):
        with pytest.raises(ConfigurationError):
            CICDecimator(decimation=1)

    def test_register_width_matches_hogenauer(self):
        cic = CICDecimator(order=3, decimation=32, input_bits=2)
        assert cic.register_bits == 17
