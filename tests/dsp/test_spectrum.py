"""Spectral analysis: SNR accounting on synthetic known-truth signals."""

import numpy as np
import pytest

from repro.dsp.spectrum import (
    analyze_tone,
    coherent_tone_frequency,
    enob_from_sndr,
    periodogram_db,
)
from repro.errors import ConfigurationError

FS = 1000.0
N = 4096


def make_tone(amplitude=1.0, freq=None, noise=0.0, harmonics=(), seed=7):
    rng = np.random.default_rng(seed)
    f = freq if freq is not None else coherent_tone_frequency(15.625, FS, N)
    t = np.arange(N) / FS
    x = amplitude * np.sin(2 * np.pi * f * t)
    for order, amp in harmonics:
        x += amp * np.sin(2 * np.pi * order * f * t)
    if noise > 0:
        x += noise * rng.standard_normal(N)
    return x, f


class TestCoherentFrequency:
    def test_lands_on_bin(self):
        f = coherent_tone_frequency(15.625, FS, N)
        k = f * N / FS
        assert k == pytest.approx(round(k))

    def test_odd_bin(self):
        f = coherent_tone_frequency(15.625, FS, N)
        assert round(f * N / FS) % 2 == 1

    def test_near_target(self):
        f = coherent_tone_frequency(15.625, FS, N)
        assert abs(f - 15.625) < FS / N * 2

    def test_rejects_out_of_band(self):
        with pytest.raises(ConfigurationError):
            coherent_tone_frequency(600.0, FS, 16)


class TestSNRMeasurement:
    def test_known_snr_recovered(self):
        noise = 1e-3
        x, f = make_tone(amplitude=1.0, noise=noise)
        a = analyze_tone(x, FS, tone_hz=f)
        # True SNR = 10log10(0.5 / noise^2) over full Nyquist band.
        expected = 10 * np.log10(0.5 / noise**2)
        assert a.snr_db == pytest.approx(expected, abs=1.0)

    def test_noiseless_tone_very_high_snr(self):
        x, f = make_tone(amplitude=0.5, noise=0.0)
        a = analyze_tone(x, FS, tone_hz=f)
        assert a.snr_db > 150.0

    def test_band_limiting_excludes_noise(self):
        """Restricting the band to 100 Hz cuts broadband noise ~7 dB
        (1000/2 -> 100 Hz is a factor 5)."""
        x, f = make_tone(amplitude=1.0, noise=3e-3)
        full = analyze_tone(x, FS, tone_hz=f)
        narrow = analyze_tone(x, FS, tone_hz=f, max_band_hz=100.0)
        assert narrow.snr_db == pytest.approx(full.snr_db + 7.0, abs=1.0)

    def test_amplitude_invariance(self):
        """SNR is a ratio: scaling the record must not change it."""
        x, f = make_tone(amplitude=1.0, noise=1e-3)
        a1 = analyze_tone(x, FS, tone_hz=f)
        a2 = analyze_tone(1000 * x, FS, tone_hz=f)
        assert a1.snr_db == pytest.approx(a2.snr_db, abs=1e-6)

    def test_finds_tone_without_hint(self):
        x, f = make_tone(amplitude=1.0, noise=1e-3)
        a = analyze_tone(x, FS)
        assert a.tone_frequency_hz == pytest.approx(f, abs=FS / N)

    def test_dc_offset_ignored(self):
        x, f = make_tone(amplitude=1.0, noise=1e-3)
        a0 = analyze_tone(x, FS, tone_hz=f)
        a1 = analyze_tone(x + 5.0, FS, tone_hz=f)
        assert a1.snr_db == pytest.approx(a0.snr_db, abs=0.5)
        assert a1.dc_power > a0.dc_power


class TestDistortion:
    def test_harmonics_counted_in_thd_not_snr(self):
        x, f = make_tone(
            amplitude=1.0, noise=1e-4, harmonics=((2, 0.01), (3, 0.005))
        )
        a = analyze_tone(x, FS, tone_hz=f)
        expected_thd = 10 * np.log10((0.01**2 + 0.005**2) / 2 / 0.5)
        assert a.thd_db == pytest.approx(expected_thd, abs=0.5)
        # SNR should NOT be degraded by the harmonics.
        clean = analyze_tone(make_tone(amplitude=1.0, noise=1e-4)[0], FS, tone_hz=f)
        assert a.snr_db == pytest.approx(clean.snr_db, abs=1.0)

    def test_sndr_includes_harmonics(self):
        x, f = make_tone(amplitude=1.0, noise=1e-4, harmonics=((3, 0.02),))
        a = analyze_tone(x, FS, tone_hz=f)
        assert a.sndr_db < a.snr_db

    def test_sfdr_matches_spur(self):
        x, f = make_tone(amplitude=1.0, noise=1e-5, harmonics=((3, 0.01),))
        a = analyze_tone(x, FS, tone_hz=f)
        # Spur is 40 dB below the tone (power of the spur bin ~ 1e-4/2
        # vs 0.5). Skirt spreads the spur over bins; allow slack.
        assert a.sfdr_db == pytest.approx(40.0, abs=3.0)

    def test_aliased_harmonic_found(self):
        """A 3rd harmonic beyond Nyquist folds back and must still be
        booked as distortion."""
        f = coherent_tone_frequency(400.0, FS, N)  # 3f = 1200 -> alias 200
        t = np.arange(N) / FS
        x = np.sin(2 * np.pi * f * t) + 0.01 * np.sin(2 * np.pi * 3 * f * t)
        a = analyze_tone(x, FS, tone_hz=f)
        assert a.distortion_power > 0.5 * (0.01**2 / 2)


class TestENOB:
    def test_formula(self):
        assert enob_from_sndr(74.0) == pytest.approx(12.0, abs=0.01)
        assert enob_from_sndr(1.76) == pytest.approx(0.0, abs=1e-9)

    def test_ideal_quantizer_enob(self):
        """A 10-bit quantized full-scale sine shows ~10 ENOB."""
        x, f = make_tone(amplitude=1.0, noise=0.0)
        lsb = 2.0 / 2**10
        xq = np.round(x / lsb) * lsb
        a = analyze_tone(xq, FS, tone_hz=f)
        assert a.enob_bits == pytest.approx(10.0, abs=0.35)


class TestPeriodogram:
    def test_peak_at_zero_db(self):
        x, f = make_tone(amplitude=0.3, noise=1e-4)
        freqs, db = periodogram_db(x, FS)
        assert db.max() == pytest.approx(0.0, abs=1e-9)
        assert freqs[np.argmax(db)] == pytest.approx(f, abs=FS / N)

    def test_reference_power(self):
        x, f = make_tone(amplitude=1.0, noise=1e-4)
        _, db = periodogram_db(x, FS, reference_power=0.5)
        # Tone bin should be near 0 dB re the known signal power.
        assert db.max() == pytest.approx(0.0, abs=0.2)


class TestValidation:
    def test_rejects_short_record(self):
        with pytest.raises(ConfigurationError):
            analyze_tone(np.ones(32), FS)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            analyze_tone(np.ones((64, 2)), FS)

    def test_rejects_tone_outside(self):
        x, _ = make_tone()
        with pytest.raises(ConfigurationError):
            analyze_tone(x, FS, tone_hz=FS)

    def test_summary_string(self):
        x, f = make_tone(noise=1e-3)
        a = analyze_tone(x, FS, tone_hz=f)
        assert "SNR" in a.summary()
        assert "ENOB" in a.summary()
