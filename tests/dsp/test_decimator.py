"""Two-stage decimation filter: rates, DC accuracy, float path."""

import numpy as np
import pytest

from repro.dsp.decimator import DecimationFilter
from repro.errors import ConfigurationError
from repro.params import DecimationParams


@pytest.fixture()
def filt() -> DecimationFilter:
    return DecimationFilter()


def dc_bitstream(level: float, n: int, rng=None) -> np.ndarray:
    """First-order sigma-delta encoding of a DC level (exact mean)."""
    rng = rng or np.random.default_rng(0)
    bits = np.empty(n, dtype=np.int64)
    acc = 0.0
    for i in range(n):
        v = 1 if acc >= 0 else -1
        acc += level - v
        bits[i] = v
    return bits


class TestRates:
    def test_output_rate_is_1k(self, filt):
        assert filt.output_rate_hz == pytest.approx(1000.0)

    def test_total_decimation(self, filt):
        assert filt.params.total_decimation == 128

    def test_output_count(self, filt):
        bits = np.ones(128 * 50, dtype=np.int64)
        out = filt.process(bits)
        assert out.codes.size == 50

    def test_group_delay_order_of_magnitude(self, filt):
        # ~ (3*31/2)/128k + (31/2)/4k ~ 4.2 ms
        assert 2e-3 < filt.group_delay_s < 8e-3


class TestDCAccuracy:
    @pytest.mark.parametrize("level", [0.0, 0.25, -0.5, 0.8])
    def test_dc_level_recovered(self, filt, level):
        bits = dc_bitstream(level, 128 * 80)
        out = filt.process(bits)
        # Discard settling, average the rest: within 1 LSB of the level.
        settled = out.values[20:]
        assert settled.mean() == pytest.approx(level, abs=2.0 / 4096)

    def test_full_scale_positive_saturates_cleanly(self, filt):
        bits = np.ones(128 * 40, dtype=np.int64)
        out = filt.process(bits)
        assert out.codes.max() <= 2047
        assert out.codes[-1] == 2047  # +FS = top code

    def test_full_scale_negative(self, filt):
        bits = -np.ones(128 * 40, dtype=np.int64)
        out = filt.process(bits)
        assert out.codes.min() >= -2048


class TestBitstreamValidation:
    def test_rejects_non_pm1(self, filt):
        with pytest.raises(ConfigurationError, match=r"\+/-1"):
            filt.process(np.array([1, 0, -1], dtype=np.int64))

    def test_accepts_exact_float_pm1(self, filt):
        out = filt.process(np.ones(256))
        assert out.codes.size == 2

    def test_rejects_fractional_floats(self, filt):
        with pytest.raises(ConfigurationError):
            filt.process(np.full(256, 0.5))


class TestStreaming:
    def test_chunked_equals_monolithic(self):
        rng = np.random.default_rng(31)
        bits = rng.choice([-1, 1], size=128 * 60).astype(np.int64)
        whole = DecimationFilter()
        expected = whole.process(bits).codes
        chunked = DecimationFilter()
        pieces = [
            chunked.process(bits[i : i + 1000]).codes
            for i in range(0, bits.size, 1000)
        ]
        assert np.array_equal(np.concatenate(pieces), expected)

    def test_reset(self):
        bits = np.ones(128 * 10, dtype=np.int64)
        filt = DecimationFilter()
        a = filt.process(bits).codes
        filt.reset()
        b = filt.process(bits).codes
        assert np.array_equal(a, b)


class TestFloatPath:
    def test_fixed_point_tracks_float(self):
        """Bit-true output within ~1 LSB of the double-precision cascade."""
        rng = np.random.default_rng(41)
        bits = rng.choice([-1, 1], size=128 * 60).astype(np.int64)
        filt = DecimationFilter()
        fixed = filt.process(bits).values
        float_out = filt.process_float(bits.astype(float))
        n = min(fixed.size, float_out.size)
        err = np.abs(fixed[:n] - float_out[:n])
        assert err.max() < 3.0 / 4096  # quantizer + coeff rounding

    def test_float_path_streaming(self):
        rng = np.random.default_rng(42)
        bits = rng.choice([-1.0, 1.0], size=128 * 40)
        whole = DecimationFilter()
        expected = whole.process_float(bits)
        chunked = DecimationFilter()
        pieces = [
            chunked.process_float(bits[i : i + 777])
            for i in range(0, bits.size, 777)
        ]
        got = np.concatenate(pieces)
        assert got == pytest.approx(expected, abs=1e-12)


class TestCascadeResponse:
    def test_cutoff_near_500(self, filt):
        cutoff = filt.measured_cutoff_hz()
        assert 350.0 < cutoff < 550.0

    def test_flat_in_cardiac_band(self, filt):
        f = np.linspace(0.5, 40.0, 40)
        mag = filt.cascade_frequency_response(f)
        assert np.max(np.abs(20 * np.log10(mag))) < 0.1

    def test_result_metadata(self, filt):
        out = filt.process(np.ones(256, dtype=np.int64))
        assert out.bits == 12
        assert out.lsb == pytest.approx(1.0 / 2048)


class TestAlternativeArchitectures:
    def test_custom_split(self):
        params = DecimationParams(
            cic_decimation=16, fir_decimation=8, fir_taps=48
        )
        filt = DecimationFilter(params)
        assert filt.params.total_decimation == 128
        out = filt.process(np.ones(128 * 20, dtype=np.int64))
        assert out.codes.size == 20

    def test_mismatched_osr_guard_in_system_params(self):
        from repro.params import SystemParams

        with pytest.raises(ConfigurationError, match="OSR"):
            SystemParams(
                decimation=DecimationParams(cic_decimation=16, fir_decimation=4)
            )
