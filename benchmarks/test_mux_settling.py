"""FIG4/MUX bench: element-switch settling budget (Sec. 2.2 claim)."""

from conftest import print_rows, run_once

from repro.experiments import run_mux_settling


def test_mux_settling(benchmark):
    result = run_once(benchmark, run_mux_settling, n_words=128)
    print_rows(
        "FIG4/MUX — mux settling vs. converter bandwidth (Sec. 2.2)",
        result.rows(),
    )
    # The paper's claim: settling is limited by the sigma-delta signal
    # bandwidth, i.e. the filter, with the analog switch orders of
    # magnitude faster.
    assert result.timing.dominant == "filter"
    assert result.electrical_to_filter_ratio < 1e-4
    # The empirical settle agrees with the analytic flush budget.
    assert (
        result.empirical_settle_words
        <= result.timing.output_words_discarded + 4
    )
