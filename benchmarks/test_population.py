"""EVAL-POP bench: the Fig. 9 protocol over a virtual population.

The device-validation statistics the paper's single subject cannot give:
mean +/- SD of sys/dia errors across 10 diversified virtual subjects,
judged against the AAMI/ISO <= 5 +/- 8 mmHg criterion.
"""

import numpy as np
from conftest import print_rows, run_once

from repro.experiments import run_population


def test_population(benchmark):
    result = run_once(
        benchmark, run_population, n_subjects=10, duration_s=10.0
    )
    print_rows(
        "EVAL-POP — population accuracy (AAMI-style)", result.rows()
    )
    assert result.n_subjects == 10
    assert result.passes_aami()
    # No catastrophic outlier (a subject where the protocol silently
    # failed would show tens of mmHg).
    assert np.max(np.abs(result.systolic_errors_mmhg)) < 12.0
    assert np.max(np.abs(result.diastolic_errors_mmhg)) < 12.0
    # The waveform itself, not just the two anchor points, tracks truth.
    assert np.median(result.waveform_rms_mmhg) < 5.0
