"""FIG1/LOC bench: placement tolerance + vessel localization (Secs. 1-2)."""

import numpy as np
from conftest import print_rows, run_once

from repro.experiments import run_localization


def test_localization(benchmark):
    result = run_once(benchmark, run_localization, n_offsets=41)
    print_rows(
        "FIG1/LOC — placement tolerance and vessel localization (Sec. 2)",
        result.rows(),
    )
    # Shape: selecting the strongest element always at least matches the
    # fixed element, and helps on average.
    assert np.all(result.selected_gain >= result.fixed_gain - 1e-12)
    assert result.selection_advantage > 1.0
    # Coupling of the best element degrades gracefully out to 1 mm.
    mid = result.offsets_m.size // 2
    at_1mm = np.interp(1e-3, result.offsets_m, result.selected_gain)
    assert at_1mm > 0.7 * result.selected_gain[mid]
    # Localization on the 8x8 array: median error well below the array
    # half-span.
    half_span = 7 * 150e-6 / 2
    assert np.median(result.centroid_error_m) < half_span
