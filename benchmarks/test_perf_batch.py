"""PERF bench: batched multi-session fused-kernel pipeline.

Writes ``BENCH_batch.json`` at the repo root. Two gates:

* ``test_batch_bit_identity`` — for batch sizes {1, 8, 128}, the
  batched session's codes and telemetry counters must equal ``B``
  independent single :class:`~repro.core.session.AcquisitionSession`
  runs sample for sample, across uneven chunk splits. This is the CI
  failure condition: a batched pipeline that is fast but not
  bit-identical is wrong, not fast.
* ``test_batch_throughput`` — one core streams 128 concurrent 1 kS/s
  sessions (128k modulator samples each, one second of device time per
  lane) through the fused chip→ΣΔ→CIC→FIR→decode kernel. The
  acceptance bar is >= 10x the single-session streaming figure
  (``BENCH_chain.json``'s ``pipeline_msps``, 3.92 Msps at seed time).
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import print_rows

from repro.batch import BatchAcquisitionSession, batch_kernel_available
from repro.core.chain import ReadoutChain
from repro.core.session import AcquisitionSession
from repro.params import NonidealityParams, SystemParams

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"
CHAIN_BENCH_PATH = BENCH_PATH.parent / "BENCH_chain.json"

# The single-session streaming figure the tentpole is measured against;
# read live from BENCH_chain.json when present, else the seed value.
STREAM_BASELINE_MSPS = 3.92

IDENTITY_BATCHES = (1, 8, 128)
PERF_LANES = 128
PERF_CHUNK = 32_000
PERF_CHUNKS = 4  # 128k samples/lane = 1 s of device time per lane
REQUIRED_SPEEDUP = 10.0


def update_bench(section: dict) -> None:
    """Merge keys into BENCH_batch.json, preserving the other test's."""
    report = {}
    if BENCH_PATH.exists():
        try:
            report = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(section)
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")


def stream_baseline_msps() -> float:
    if CHAIN_BENCH_PATH.exists():
        try:
            report = json.loads(CHAIN_BENCH_PATH.read_text())
            return float(report["streaming"]["pipeline_msps"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            pass
    return STREAM_BASELINE_MSPS


def make_chain(seed: int) -> ReadoutChain:
    params = SystemParams().replace(nonideality=NonidealityParams.ideal())
    return ReadoutChain(params, rng=np.random.default_rng(seed))


def pressure_field(n: int, n_elements: int) -> np.ndarray:
    """A pulse-like field, well inside the membrane operating range."""
    t = np.arange(n) / 128e3
    p = 2500.0 * np.sin(2 * np.pi * 1.2 * t) + 1500.0 * np.sin(
        2 * np.pi * 7.3 * t
    )
    return np.repeat(p[:, None], n_elements, axis=1)


def _single_codes(seed: int, field: np.ndarray, splits: tuple) -> tuple:
    chain = make_chain(seed)
    session = AcquisitionSession(chain, element=1)
    off = 0
    for n in splits:
        session.feed_pressure(field[off : off + n])
        off += n
    session.feed_pressure(field[off:])
    session.finish()
    return session.recording().codes, session.telemetry


def test_batch_bit_identity():
    """Batched == N independent single sessions, for every batch size."""
    n_total = 3_584
    identical = True
    per_batch = {}
    for B in IDENTITY_BATCHES:
        chains = [make_chain(4000 + l) for l in range(B)]
        n_el = chains[0].chip.mux.array.n_elements
        field = pressure_field(n_total, n_el)
        sess = BatchAcquisitionSession(chains, element=1)
        # Deliberately uneven chunk split, different from the singles'.
        for lo, hi in ((0, 1024), (1024, 1025), (1025, n_total)):
            sess.feed_pressure([field[lo:hi]] * B)
        sess.finish()
        ok = True
        for l in range(B):
            codes, telemetry = _single_codes(
                4000 + l, field, (512, 2048)
            )
            lane = sess.telemetries[l]
            lane.reconcile()
            ok = ok and np.array_equal(sess.codes(l), codes)
            for counter in (
                "mod_samples_in",
                "words_delivered",
                "frames_framed",
                "frames_decoded",
                "clipped_samples",
            ):
                ok = ok and getattr(lane, counter) == getattr(
                    telemetry, counter
                )
        per_batch[str(B)] = bool(ok)
        identical = identical and ok
    update_bench(
        {
            "kernel_available": batch_kernel_available(),
            "bit_identical": bool(identical),
            "bit_identical_per_batch": per_batch,
        }
    )
    assert identical, f"batched output diverged: {per_batch}"


def test_batch_throughput():
    """>= 10x the streaming pipeline figure, one core, 128 lanes."""
    B, n_chunk, n_chunks = PERF_LANES, PERF_CHUNK, PERF_CHUNKS
    chains = [make_chain(1000 + l) for l in range(B)]
    n_el = chains[0].chip.mux.array.n_elements
    sess = BatchAcquisitionSession(chains, element=1)
    field = pressure_field(n_chunk * n_chunks, n_el)
    chunks = [
        np.ascontiguousarray(field[i * n_chunk : (i + 1) * n_chunk])
        for i in range(n_chunks)
    ]

    # Warm-up: kernel compile + membrane transfer cache + buffer growth.
    warm = BatchAcquisitionSession([make_chain(1)], element=1)
    warm.feed_pressure([chunks[0][:2048]])

    start = time.perf_counter()
    for chunk in chunks:
        sess.feed_pressure([chunk] * B)
    sess.finish()
    wall = time.perf_counter() - start

    total = B * n_chunk * n_chunks
    msps = total / wall / 1e6
    baseline = stream_baseline_msps()
    aggregate = sess.aggregate_telemetry()
    for lane in sess.telemetries:
        lane.reconcile()

    update_bench(
        {
            "batch_lanes": B,
            "samples_per_lane": n_chunk * n_chunks,
            "chunk_samples": n_chunk,
            "wall_seconds": wall,
            "pipeline_msps": msps,
            "stream_baseline_msps": baseline,
            "speedup_vs_stream": msps / baseline,
            "words_delivered": aggregate.words_delivered,
            "used_kernel": sess.engine.uses_kernel,
        }
    )
    print_rows(
        "batched fused-chain pipeline (1 core)",
        [
            ("lanes x samples", "128 x 128k", f"{B} x {n_chunk * n_chunks}"),
            ("pipeline rate", ">= 39.2 MS/s", f"{msps:.1f} MS/s"),
            (
                "vs streaming figure",
                ">= 10x",
                f"{msps / baseline:.1f}x",
            ),
        ],
    )
    if sess.engine.uses_kernel:
        assert msps >= REQUIRED_SPEEDUP * baseline, (
            f"batched pipeline {msps:.1f} Msps < "
            f"{REQUIRED_SPEEDUP}x baseline {baseline:.2f} Msps"
        )
