"""INTRO-BASE bench: cuff vs tonometer vs catheter through a transient.

The paper's Sec. 1 motivation, quantified: the intermittent cuff misses a
hypertensive transient that the continuous methods track.
"""

from conftest import print_rows, run_once

from repro.experiments import run_baseline_comparison


def test_baseline_comparison(benchmark):
    result = run_once(benchmark, run_baseline_comparison, duration_s=120.0)
    print_rows(
        "INTRO-BASE — methods comparison through a 25 mmHg transient",
        result.rows(),
    )
    # Shape (the paper's thesis): continuous methods beat the cuff, the
    # invasive catheter is the accuracy reference.
    assert result.catheter_rmse < result.cuff_rmse
    assert result.tonometer_rmse < result.cuff_rmse
    # The cuff gets at most a couple of readings into the 2-minute
    # record ("single measurements", Sec. 1).
    assert result.cuff_readings <= 3
    # The tonometer stays within a few mmHg of truth.
    assert result.tonometer_rmse < 8.0
