"""FIG7 bench: regenerate the Fig. 7 ADC spectrum and SNR.

Paper: 15.625 Hz sine through the voltage test input, fs = 128 kHz,
OSR = 128, two-stage decimation to 1 kS/s / 12 bit; "a signal-to-noise
ratio better than 72 dB was achieved".
"""

from conftest import print_rows, run_once

from repro.experiments import run_fig7


def test_fig7_spectrum(benchmark):
    result = run_once(benchmark, run_fig7, n_fft=4096)
    print_rows("FIG7 — sigma-delta ADC tone test (Fig. 7)", result.rows())
    # Shape assertions: the paper's headline number must reproduce.
    assert result.snr_db > 72.0
    assert result.analysis.enob_bits > 11.0
    # Second-order noise shaping: the in-band floor is flat (12-bit
    # quantizer limited), while the float path shows >10 dB margin.
    assert result.float_path_analysis.snr_db > result.snr_db + 8.0


def test_fig7_noise_floor_shape(benchmark):
    """The displayed spectrum: tone at 0 dB, in-band floor below -80 dB
    per bin, no spur above -80 dBc (matches the Fig. 7 plot's character)."""
    result = run_once(benchmark, run_fig7, n_fft=4096)
    freqs, db = result.spectrum_db()
    in_band = (freqs > 30.0) & (freqs < 450.0)
    floor = db[in_band]
    assert floor.max() < -60.0  # no visible spurs in the plot
    assert result.analysis.sfdr_db > 80.0
