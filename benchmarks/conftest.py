"""Shared benchmark plumbing: paper-vs-measured table printing.

Each benchmark runs its experiment harness once (they are seconds-long
simulations, not microbenchmarks — ``pedantic`` with one round) and prints
the same rows the paper reports, in a uniform table.
"""

from __future__ import annotations


def print_rows(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Render (quantity, paper, measured) rows under a banner."""
    width_q = max(len(r[0]) for r in rows)
    width_p = max(len(r[1]) for r in rows)
    print()
    print("=" * 72)
    print(title)
    print("-" * 72)
    print(f"{'quantity':<{width_q}}  {'paper':<{width_p}}  measured")
    for quantity, paper, measured in rows:
        print(f"{quantity:<{width_q}}  {paper:<{width_p}}  {measured}")
    print("=" * 72)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
