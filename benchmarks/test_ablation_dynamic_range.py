"""ABL-DR bench: SNR vs amplitude — the Fig. 7 companion plot."""

import numpy as np
import pytest
from conftest import print_rows, run_once

from repro.experiments import run_dynamic_range


def test_ablation_dynamic_range(benchmark):
    result = run_once(benchmark, run_dynamic_range, n_fft=2048)
    print_rows(
        "ABL-DR — SNR vs input amplitude (Fig. 7 companion)", result.rows()
    )
    # Shape: 1 dB/dB in the linear region…
    assert result.linear_slope() == pytest.approx(1.0, abs=0.1)
    # …peak above the paper's 72 dB near full scale…
    assert result.peak_snr_db > 72.0
    assert result.peak_amplitude_dbfs > -6.0
    # …and monotone growth until the peak.
    valid = ~np.isnan(result.snr_db)
    upto_peak = result.snr_db[valid][
        : int(np.nanargmax(result.snr_db[valid])) + 1
    ]
    assert np.all(np.diff(upto_peak) > -1.0)
