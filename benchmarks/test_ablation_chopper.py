"""ABL-CHOP bench: chopper stabilization against flicker noise.

Not in the paper, but the canonical fix for the 1/f noise any CMOS
implementation of this front end fights: chop the first integrator and
the amplifier's low-frequency noise moves out of band.
"""

import numpy as np
from conftest import print_rows

from repro.dsp.cic import CICDecimator
from repro.dsp.spectrum import analyze_tone, coherent_tone_frequency
from repro.params import ModulatorParams, NonidealityParams
from repro.sdm.chopper import ChoppedSecondOrderSDM

FLICKERY = NonidealityParams(
    sampling_cap_f=0.1e-12,
    opamp_gain=1e12,
    clock_jitter_s=0.0,
    flicker_corner_hz=20000.0,
)


def _snr(chopped: bool, osr: int = 128, n_out: int = 2048) -> float:
    fs = 128e3
    out_rate = fs / osr
    tone = coherent_tone_frequency(15.625, out_rate, n_out)
    t = np.arange((n_out + 16) * osr) / fs
    sdm = ChoppedSecondOrderSDM(
        ModulatorParams(osr=osr), FLICKERY, enabled=chopped,
        rng=np.random.default_rng(4),
    )
    bits = sdm.simulate(0.8 * np.sin(2 * np.pi * tone * t)).bitstream
    cic = CICDecimator(order=3, decimation=osr, input_bits=2)
    vals = (cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain)[
        16 : 16 + n_out
    ]
    return float(
        analyze_tone(vals, out_rate, tone_hz=tone, max_band_hz=500.0).snr_db
    )


def _run():
    off = _snr(False)
    on = _snr(True)
    return off, on


def test_ablation_chopper(benchmark):
    off, on = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_rows(
        "ABL-CHOP — chopper stabilization vs flicker (20 kHz corner)",
        [
            ("SNR, chopping off [dB]", "(flicker-degraded)", f"{off:.1f}"),
            ("SNR, chopping on [dB]", "(flicker shifted out of band)",
             f"{on:.1f}"),
            ("recovered [dB]", "> 4", f"{on - off:+.1f}"),
        ],
    )
    assert on > off + 4.0
