"""ABL-CHOP bench: chopper stabilization against flicker noise.

Not in the paper, but the canonical fix for the 1/f noise any CMOS
implementation of this front end fights: chop the first integrator and
the amplifier's low-frequency noise moves out of band. The measurement
itself lives in ``repro.experiments.run_chopper_ablation``; this bench
times it and pins the recovered-SNR floor.
"""

from conftest import print_rows, run_once

from repro.experiments import run_chopper_ablation


def test_ablation_chopper(benchmark):
    result = run_once(benchmark, run_chopper_ablation)
    print_rows(
        "ABL-CHOP — chopper stabilization vs flicker (20 kHz corner)",
        result.rows(),
    )
    assert result.snr_on_db > result.snr_off_db + 4.0
