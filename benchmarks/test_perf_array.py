"""PERF bench: N x N array scan through the fused batch kernel.

Writes ``BENCH_array.json`` at the repo root. Two gates:

* ``test_array_scan_identity_and_speedup`` — the 64x64 fused scan must
  be bit-identical, element for element, to the sequential reference
  (snapshot-restore single sessions on a noiseless chain), and at least
  10x faster in elements/s. A scan that is fast but not bit-identical
  is wrong, not fast.
* ``test_array_frame_rates`` — host-side wall frame rate at 8x8, 16x16
  and 64x64, with a floor on the 8x8 figure, plus the *device-time*
  :class:`~repro.array.mux.ScanSchedule` timetable (shared converter vs
  one ΣΔ bank per column) for each size.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import print_rows

from repro.array.scan import ScanController
from repro.batch import batch_kernel_available
from repro.core.chain import ReadoutChain
from repro.params import ArrayParams, NonidealityParams, SystemParams

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_array.json"

DWELL_WORDS = 24  # 9 settle words + 15 valid, comfortably real
DECIMATION = 128
IDENTITY_SIZE = (64, 64)
FRAME_SIZES = ((8, 8), (16, 16), (64, 64))
REQUIRED_SPEEDUP = 10.0
MIN_8X8_FRAME_RATE_HZ = 5.0


def update_bench(section: dict) -> None:
    """Merge keys into BENCH_array.json, preserving the other test's."""
    report = {}
    if BENCH_PATH.exists():
        try:
            report = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(section)
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")


def make_chain(rows: int, cols: int) -> ReadoutChain:
    base = SystemParams()
    params = base.replace(
        array=ArrayParams(rows=rows, cols=cols, membrane=base.array.membrane),
        nonideality=NonidealityParams.ideal(),
    )
    return ReadoutChain(params)


def scan_segments(n_elements: int, dwell: int) -> np.ndarray:
    """Per-element dwell pressures: a test tone with per-element phase.

    The bench measures scan throughput and bit-identity, not
    physiology, so the stimulus is a fast tone that exercises several
    output words per element rather than a cardiac-rate pulse.
    """
    t = np.arange(dwell) / 128e3
    phases = 0.03 * np.arange(n_elements)
    return 2000.0 * np.sin(
        2 * np.pi * 40.0 * t[None, :] + phases[:, None]
    )


def run_fused_scan_timed(rows: int, cols: int, segments: np.ndarray):
    """One full-array scan; returns (records, wall_s, used_fused_path)."""
    chain = make_chain(rows, cols)
    controller = ScanController(chain.chip.mux)
    start = time.perf_counter()
    records = controller.scan_records(chain, segments=segments, fused=True)
    wall = time.perf_counter() - start
    return records, wall, controller.last_scan_fused


def test_array_scan_identity_and_speedup():
    """64x64 fused scan == sequential reference, and >= 10x faster."""
    rows, cols = IDENTITY_SIZE
    n_el = rows * cols
    dwell = DWELL_WORDS * DECIMATION
    segments = scan_segments(n_el, dwell)

    # Warm-up at 2x2 amortizes kernel compile + transfer-fit caches.
    run_fused_scan_timed(2, 2, scan_segments(4, dwell))

    fused, fused_wall, used_fused = run_fused_scan_timed(
        rows, cols, segments
    )

    # Sequential reference: one single-lane session per element, each
    # restored to the pre-scan modulator state (the matched-bank
    # semantics the batched/fused scan implements). The zero field is
    # reused across elements to keep the reference allocation-light.
    chain = make_chain(rows, cols)
    saved = chain.chip.state_snapshot()
    field = np.zeros((dwell, n_el))
    columns = []
    seq_start = time.perf_counter()
    for k in range(n_el):
        chain.chip.restore_state(saved)
        session = chain.session(element=k)
        field[:, k] = segments[k]
        session.feed_pressure(field)
        field[:, k] = 0.0
        columns.append(session.recording().values)
    seq_wall = time.perf_counter() - seq_start
    n = min(c.size for c in columns)
    reference = np.column_stack([c[:n] for c in columns])

    identical = bool(np.array_equal(fused[:n], reference))
    fused_rate = n_el / fused_wall
    seq_rate = n_el / seq_wall
    speedup = fused_rate / seq_rate

    update_bench(
        {
            "kernel_available": batch_kernel_available(),
            "identity_size": f"{rows}x{cols}",
            "dwell_words": DWELL_WORDS,
            "bit_identical_64x64": identical,
            "fused_path_used": used_fused,
            "fused_elements_per_s": fused_rate,
            "sequential_elements_per_s": seq_rate,
            "speedup_vs_sequential": speedup,
        }
    )
    print_rows(
        "64x64 fused scan vs sequential reference (1 core)",
        [
            ("elements x dwell words", "-", f"{n_el} x {DWELL_WORDS}"),
            (
                "bit-identical",
                "required",
                "yes" if identical else "MISMATCH",
            ),
            ("fused rate", "-", f"{fused_rate:.0f} elements/s"),
            ("sequential rate", "-", f"{seq_rate:.0f} elements/s"),
            ("speedup", ">= 10x", f"{speedup:.1f}x"),
        ],
    )
    assert identical, "fused 64x64 scan diverged from sequential reference"
    if used_fused:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"fused scan {speedup:.1f}x sequential, need "
            f">= {REQUIRED_SPEEDUP}x"
        )


def test_array_frame_rates():
    """Wall frame rate over array sizes + the device-time timetable."""
    dwell = DWELL_WORDS * DECIMATION
    # Warm-up (kernel compile, caches).
    run_fused_scan_timed(2, 2, scan_segments(4, dwell))

    sizes = {}
    rows_out = []
    for rows, cols in FRAME_SIZES:
        n_el = rows * cols
        segments = scan_segments(n_el, dwell)
        _, wall, used_fused = run_fused_scan_timed(rows, cols, segments)
        chain = make_chain(rows, cols)
        controller = ScanController(chain.chip.mux)
        shared = controller.schedule(
            chain.fpga.filter, valid_words=DWELL_WORDS - 9
        )
        banked = controller.schedule(
            chain.fpga.filter, valid_words=DWELL_WORDS - 9, banks=cols
        )
        key = f"{rows}x{cols}"
        sizes[key] = {
            "fused_path_used": used_fused,
            "wall_seconds": wall,
            "host_frame_rate_hz": 1.0 / wall,
            "host_elements_per_s": n_el / wall,
            "device_frame_rate_hz": shared.frame_rate_hz,
            "device_frame_rate_banked_hz": banked.frame_rate_hz,
            "device_elements_per_s": shared.elements_per_s,
        }
        rows_out.append(
            (
                f"{key} host frame rate",
                "-",
                f"{1.0 / wall:.1f} Hz ({n_el / wall:.0f} elements/s)",
            )
        )
        rows_out.append(
            (
                f"{key} device frame rate",
                "timetable",
                f"{shared.frame_rate_hz:.3f} Hz shared / "
                f"{banked.frame_rate_hz:.3f} Hz per-column banks",
            )
        )
    update_bench({"sizes": sizes})
    print_rows("array scan frame rates", rows_out)
    if batch_kernel_available():
        assert sizes["8x8"]["host_frame_rate_hz"] >= MIN_8X8_FRAME_RATE_HZ, (
            f"8x8 host frame rate "
            f"{sizes['8x8']['host_frame_rate_hz']:.1f} Hz below the "
            f"{MIN_8X8_FRAME_RATE_HZ} Hz floor"
        )
