"""ABL-FB bench: the paper's future-work feedback-capacitor knob.

Sec. 4: resolution "can be achieved by adjusting the feedback capacitors
of the first modulator stage". Sweeps Cfb and maps the SNR-vs-overload
trade-off.
"""

import numpy as np
from conftest import print_rows, run_once

from repro.experiments import run_feedback_ablation


def test_ablation_feedback(benchmark):
    result = run_once(benchmark, run_feedback_ablation, n_out=2048)
    print_rows(
        "ABL-FB — first-stage feedback-capacitor sweep (Sec. 4 outlook)",
        result.rows(),
    )
    ratios = result.cfb_ratios
    snr = result.snr_db
    nominal = int(np.argmin(np.abs(ratios - 1.0)))
    best = int(np.nanargmax(snr))
    # Shape: moderate Cfb reduction improves SNR (the paper's proposal)…
    assert snr[best] >= snr[nominal]
    assert result.best_ratio <= 1.0
    # …but aggressive reduction overloads the loop and collapses SNR.
    smallest = int(np.argmin(ratios))
    assert result.clipped_fraction[smallest] > 0.3
    assert snr[smallest] < snr[best] - 20.0
