"""FIG2/MEM bench: transducer characterization (Sec. 2.1 membrane)."""

import numpy as np
from conftest import print_rows, run_once

from repro.experiments import run_membrane_transfer


def test_membrane_transfer(benchmark):
    result = run_once(benchmark, run_membrane_transfer, n_points=201)
    print_rows(
        "FIG2/MEM — membrane transducer characterization (Sec. 2.1)",
        result.rows(),
    )
    # Shape: monotone, nearly linear over the physiologic band, rest
    # capacitance in the hundreds of fF for a 100 um CMOS membrane.
    assert np.all(np.diff(result.capacitances_f) > 0)
    assert result.max_linearity_error_fraction < 1e-3
    assert 50e-15 < result.rest_capacitance_f < 1e-12
    # Quasi-static operation: resonance orders of magnitude above the
    # 500 Hz signal band.
    assert result.resonance_hz > 1e6
