"""PERF bench: the acquisition gateway under concurrent faulted load.

One :class:`~repro.gateway.server.GatewayServer` running the batched
decode plane, a fleet of device simulators (half of them carrying
seeded link-fault schedules), and the numbers CI tracks in
``BENCH_gateway.json``:

* **sessions/s** — complete device sessions (HELLO → frames → BYE)
  the gateway closes per wall-clock second, steady-state: one warmup
  run pays the lazy CRC-table build and allocator growth, then the
  best of ``TRIALS`` timed runs is recorded (the load generator
  pre-materializes its wire bytes via ``prepare()``, so the measured
  wall is transport + gateway work, not client-side frame encoding);
* **p99 end-to-end frame latency** — client ``on_frame_sent`` stamp to
  gateway decode stamp, measured per frame on the same monotonic
  clock, faults and replays included;
* **soak** — a 1000-device campaign in waves of 250 concurrent
  devices against one server, each wave's closed sessions reconciled
  and retired, demonstrating that fleet scale does not accumulate
  gateway memory.

The run is also a correctness gate, enforced in-test so CI fails on
regression without consulting the JSON:

* every session's conservation books reconcile and the fleet closes
  with ``frames_unaccounted == 0`` — exact, not merely non-negative;
* every *fault-free* device's delivered words are **bit-identical** to
  the payload generator's (any mismatch is silent corruption);
* ``sessions_per_second`` must clear ``FLOOR_SESSIONS_PER_S`` and p99
  must stay under ``CEIL_P99_MS`` (both set well inside the batched
  plane's envelope but far outside the per-session worker's);
* each soak wave's memory residue after retirement stays bounded.
"""

import asyncio
import gc
import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from conftest import print_rows

from repro.faults import FaultInjector, FaultSpec
from repro.gateway.chaos import CHAOS_KINDS
from repro.gateway.client import (
    DeviceClient,
    expected_codes,
    synthetic_payloads,
)
from repro.gateway.server import GatewayServer

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_gateway.json"

N_DEVICES = 40
FRAMES_PER_DEVICE = 100
SAMPLES_PER_FRAME = 32
FAULT_RATE_HZ = 1.0
FRAME_RATE_HZ = 50.0
#: Payloads per client TCP write — load-generator syscall granularity.
COALESCE_PAYLOADS = 50
#: Timed repeats (after one warmup); the best is the steady-state figure.
TRIALS = 5

#: CI regression floors. The committed batched-plane figure is ~1.5k
#: sessions/s with p99 ~12 ms on an idle box; the floors leave headroom
#: for noisy CI hardware while still failing hard on any return to the
#: per-session worker's ~300/s / ~90 ms envelope.
FLOOR_SESSIONS_PER_S = 900.0
CEIL_P99_MS = 50.0

SOAK_DEVICES = 1000
SOAK_WAVE = 250
SOAK_FRAMES = 30
SOAK_SPF = 16
#: Gateway memory still held after a wave's sessions are reconciled and
#: retired — leaked buffers, lanes or tasks would accumulate wave over
#: wave and trip this on the later waves.
SOAK_RESIDUE_MB = 16.0


class ProbedServer(GatewayServer):
    """Gateway with a per-frame decode-stamp probe on every session."""

    def __init__(self, probe, **kwargs):
        super().__init__(**kwargs)
        self._probe = probe

    async def _handshake(self, reader, writer):
        session = await super()._handshake(reader, writer)
        if session is not None and session.frame_hook is None:
            session.frame_hook = self._probe(session.device_id)
        return session


def _fault_injector(seed: int) -> FaultInjector:
    horizon_s = FRAMES_PER_DEVICE / FRAME_RATE_HZ
    specs = [
        FaultSpec(kind=kind, rate_hz=FAULT_RATE_HZ, magnitude=m)
        for kind, m in zip(CHAOS_KINDS, (1.0, 0.5, 1.0, 1.0))
    ]
    return FaultInjector(specs, seed=seed, horizon_s=horizon_s)


async def _run_fleet():
    sent: dict[int, dict[int, float]] = {
        did: {} for did in range(N_DEVICES)
    }
    latencies: list[float] = []

    def probe(device_id):
        stamps = sent[device_id]

        def on_decoded(sequence, t_decoded):
            t_sent = stamps.get(sequence)
            if t_sent is not None:
                latencies.append(t_decoded - t_sent)

        return on_decoded

    server = ProbedServer(probe)
    host, port = await server.start()
    clients = []
    for did in range(N_DEVICES):
        stamps = sent[did]

        def on_sent(sequence, t, stamps=stamps):
            stamps[sequence] = t

        client = DeviceClient(
            host,
            port,
            device_id=did,
            payloads=synthetic_payloads(
                FRAMES_PER_DEVICE, SAMPLES_PER_FRAME
            ),
            faults=_fault_injector(did) if did % 2 == 0 else None,
            fault_frame_rate_hz=FRAME_RATE_HZ,
            replay_limit=FRAMES_PER_DEVICE + 1,
            on_frame_sent=on_sent,
            coalesce_payloads=COALESCE_PAYLOADS,
        )
        # Wire bytes (faults included) materialize outside the timed
        # window: the measured wall is the gateway's, not the encoder's.
        client.prepare()
        clients.append(client)

    t0 = time.perf_counter()
    reports = await asyncio.gather(*(c.run() for c in clients))
    assert await server.drain(timeout_s=10.0)
    wall = time.perf_counter() - t0
    await server.stop()
    server.reconcile()
    return server, reports, latencies, wall


def _audit_fleet(server, reports):
    """The conservation + bit-identity gate, applied to one trial."""
    fleet = server.fleet_telemetry()
    frames_sent = sum(r.frames_sent for r in reports)
    faults = sum(r.faults_injected for r in reports)

    assert all(r.bye_sent for r in reports)
    assert frames_sent == N_DEVICES * FRAMES_PER_DEVICE
    assert fleet.frames_framed == frames_sent
    assert (
        fleet.frames_decoded + fleet.lost_frames + fleet.frames_unaccounted
        == frames_sent
    )
    # The tail/BYE-boundary fix makes conservation exact, not just >= 0.
    assert fleet.frames_unaccounted == 0
    assert faults > 0  # the faulted half actually misbehaved

    # Bit-identity: every fault-free device's delivered words must equal
    # the generator's exactly — the batched plane is not allowed to be
    # "close"; any mismatch is silent corruption.
    want = expected_codes(FRAMES_PER_DEVICE, SAMPLES_PER_FRAME).astype(
        np.int64
    )
    clean = 0
    for did in range(1, N_DEVICES, 2):
        got = server.sessions[did].codes(0)
        assert np.array_equal(got, want), (
            f"bit-identity mismatch on fault-free device {did}"
        )
        clean += 1
    return fleet, faults, clean


async def _run_soak():
    """1000 devices in bounded waves: memory must not accumulate.

    Each wave streams, BYEs and drains; its sessions are then
    reconciled and retired (popped from the session table and detached
    from the decode plane — the operator's archive step). What remains
    allocated afterwards is the gateway's own standing footprint, which
    must stay flat across waves.
    """
    server = GatewayServer()
    host, port = await server.start()
    gc.collect()
    tracemalloc.start()
    base, _ = tracemalloc.get_traced_memory()
    residue_mb = []
    t0 = time.perf_counter()
    for wave_start in range(0, SOAK_DEVICES, SOAK_WAVE):
        clients = []
        for did in range(wave_start, wave_start + SOAK_WAVE):
            client = DeviceClient(
                host,
                port,
                device_id=did,
                payloads=synthetic_payloads(SOAK_FRAMES, SOAK_SPF),
                coalesce_payloads=SOAK_FRAMES,
            )
            client.prepare()
            clients.append(client)
        reports = await asyncio.gather(*(c.run() for c in clients))
        assert await server.drain(timeout_s=30.0)
        assert all(r.bye_sent for r in reports)
        for did in range(wave_start, wave_start + SOAK_WAVE):
            session = server.sessions.pop(did)
            session.finalize()
            assert session.queue.qsize() == 0
            assert session._demux.buffered == 0
            session.reconcile()
            if server.plane is not None:
                server.plane.detach(session)
        del clients, reports, session
        gc.collect()
        current, _ = tracemalloc.get_traced_memory()
        residue_mb.append((current - base) / 1e6)
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    plane_ticks = server.plane.ticks if server.plane is not None else 0
    await server.stop()
    return {
        "devices": SOAK_DEVICES,
        "wave_concurrency": SOAK_WAVE,
        "frames_per_device": SOAK_FRAMES,
        "samples_per_frame": SOAK_SPF,
        "wall_seconds": wall,
        "sessions_per_second": SOAK_DEVICES / wall,
        "tracemalloc_peak_mb": peak / 1e6,
        "residue_after_wave_mb": residue_mb,
        "plane_ticks": plane_ticks,
        "reconciled": True,
    }


def test_perf_gateway():
    # Steady state: one warmup run (imports, CRC tables, allocator),
    # then TRIALS timed runs with the collector parked, so the recorded
    # figure is the gateway's, not first-run costs or GC pauses.
    asyncio.run(_run_fleet())
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        trials = [asyncio.run(_run_fleet()) for _ in range(TRIALS)]
    finally:
        gc.enable()
        gc.unfreeze()

    for _, _, latencies, _ in trials:
        assert latencies, "latency probe saw no frames"
    best = min(trials, key=lambda t: t[3])
    server, reports, latencies, wall = best
    fleet, faults, clean_devices = _audit_fleet(server, reports)

    lat_ms = np.sort(np.array(latencies)) * 1e3
    p50 = float(np.percentile(lat_ms, 50))
    p99 = float(np.percentile(lat_ms, 99))
    sessions_per_s = N_DEVICES / wall
    frames_per_s = fleet.frames_decoded / wall

    # Regression floors (see module docstring for the envelope).
    assert sessions_per_s >= FLOOR_SESSIONS_PER_S
    assert p99 < CEIL_P99_MS

    soak = asyncio.run(_run_soak())
    assert max(soak["residue_after_wave_mb"]) < SOAK_RESIDUE_MB

    report = {
        "devices": N_DEVICES,
        "frames_per_device": FRAMES_PER_DEVICE,
        "samples_per_frame": SAMPLES_PER_FRAME,
        "faulty_devices": sum(1 for d in range(N_DEVICES) if d % 2 == 0),
        "faults_injected": faults,
        "decode_plane": "batch",
        "coalesce_payloads": COALESCE_PAYLOADS,
        "wall_seconds": wall,
        "sessions_per_second": sessions_per_s,
        "sessions_per_second_trials": [N_DEVICES / t[3] for t in trials],
        "frames_per_second": frames_per_s,
        "frames_decoded": fleet.frames_decoded,
        "frames_lost": fleet.lost_frames,
        "frames_stale": fleet.stale_frames,
        "frames_unaccounted": fleet.frames_unaccounted,
        "crc_errors": fleet.crc_errors,
        "clean_devices_bit_identical": clean_devices,
        "latency_ms": {
            "p50": p50,
            "p99": p99,
            "max": float(lat_ms[-1]),
            "samples": int(lat_ms.size),
        },
        "batch_plane": (
            server.plane.metrics() if server.plane is not None else None
        ),
        "soak": soak,
        "reconciled": True,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print_rows(
        "PERF — gateway fleet: 40 devices, half faulted, batched plane",
        [
            ("wall [s]", "(whole fleet, best trial)", f"{wall:.3f}"),
            (
                "sessions/s",
                f"closed with BYE, floor {FLOOR_SESSIONS_PER_S:.0f}",
                f"{sessions_per_s:.1f}",
            ),
            ("frames/s", "decoded", f"{frames_per_s:.0f}"),
            ("latency p50 [ms]", "send -> decode", f"{p50:.2f}"),
            ("latency p99 [ms]", f"< {CEIL_P99_MS:.0f}", f"{p99:.2f}"),
            (
                "loss accounted",
                "decoded+lost == sent, unacc == 0",
                f"{fleet.lost_frames} lost, "
                f"{fleet.frames_unaccounted} unaccounted",
            ),
            (
                "bit identity",
                "clean devices exact",
                f"{clean_devices}/{N_DEVICES - N_DEVICES // 2}",
            ),
            ("faults injected", "> 0", f"{faults}"),
            (
                "soak",
                f"{SOAK_DEVICES} devices, waves of {SOAK_WAVE}",
                f"{soak['sessions_per_second']:.0f}/s, "
                f"residue {max(soak['residue_after_wave_mb']):.1f} MB",
            ),
        ],
    )
