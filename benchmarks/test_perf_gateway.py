"""PERF bench: the acquisition gateway under concurrent faulted load.

One :class:`~repro.gateway.server.GatewayServer`, a fleet of device
simulators (half of them carrying seeded link-fault schedules), and two
numbers CI tracks in ``BENCH_gateway.json``:

* **sessions/s** — complete device sessions (HELLO → frames → BYE)
  the gateway closes per wall-clock second;
* **p99 end-to-end frame latency** — client ``on_frame_sent`` stamp to
  gateway decode stamp, measured per frame on the same monotonic clock,
  faults and replays included.

The run is also a correctness gate: every session's conservation books
must reconcile and no frame may go missing without being counted.
"""

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from conftest import print_rows

from repro.faults import FaultInjector, FaultSpec
from repro.gateway.chaos import CHAOS_KINDS
from repro.gateway.client import DeviceClient, synthetic_payloads
from repro.gateway.server import GatewayServer

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_gateway.json"

N_DEVICES = 40
FRAMES_PER_DEVICE = 100
SAMPLES_PER_FRAME = 32
FAULT_RATE_HZ = 1.0
FRAME_RATE_HZ = 50.0


class ProbedServer(GatewayServer):
    """Gateway with a per-frame decode-stamp probe on every session."""

    def __init__(self, probe, **kwargs):
        super().__init__(**kwargs)
        self._probe = probe

    async def _handshake(self, reader, writer):
        session = await super()._handshake(reader, writer)
        if session is not None and session.frame_hook is None:
            session.frame_hook = self._probe(session.device_id)
        return session


def _fault_injector(seed: int) -> FaultInjector:
    horizon_s = FRAMES_PER_DEVICE / FRAME_RATE_HZ
    specs = [
        FaultSpec(kind=kind, rate_hz=FAULT_RATE_HZ, magnitude=m)
        for kind, m in zip(CHAOS_KINDS, (1.0, 0.5, 1.0, 1.0))
    ]
    return FaultInjector(specs, seed=seed, horizon_s=horizon_s)


async def _run_fleet():
    sent: dict[int, dict[int, float]] = {
        did: {} for did in range(N_DEVICES)
    }
    latencies: list[float] = []

    def probe(device_id):
        stamps = sent[device_id]

        def on_decoded(sequence, t_decoded):
            t_sent = stamps.get(sequence)
            if t_sent is not None:
                latencies.append(t_decoded - t_sent)

        return on_decoded

    server = ProbedServer(probe)
    host, port = await server.start()
    clients = []
    for did in range(N_DEVICES):
        stamps = sent[did]

        def on_sent(sequence, t, stamps=stamps):
            stamps[sequence] = t

        clients.append(
            DeviceClient(
                host,
                port,
                device_id=did,
                payloads=synthetic_payloads(
                    FRAMES_PER_DEVICE, SAMPLES_PER_FRAME
                ),
                faults=_fault_injector(did) if did % 2 == 0 else None,
                fault_frame_rate_hz=FRAME_RATE_HZ,
                replay_limit=FRAMES_PER_DEVICE + 1,
                on_frame_sent=on_sent,
            )
        )

    t0 = time.perf_counter()
    reports = await asyncio.gather(*(c.run() for c in clients))
    assert await server.drain(timeout_s=10.0)
    wall = time.perf_counter() - t0
    await server.stop()
    server.reconcile()
    return server, reports, latencies, wall


def test_perf_gateway():
    server, reports, latencies, wall = asyncio.run(_run_fleet())

    fleet = server.fleet_telemetry()
    frames_sent = sum(r.frames_sent for r in reports)
    faults = sum(r.faults_injected for r in reports)

    # -- correctness gate: the load test is also a conservation audit.
    assert all(r.bye_sent for r in reports)
    assert frames_sent == N_DEVICES * FRAMES_PER_DEVICE
    assert fleet.frames_framed == frames_sent
    assert (
        fleet.frames_decoded + fleet.lost_frames + fleet.frames_unaccounted
        == frames_sent
    )
    assert fleet.frames_unaccounted >= 0
    assert faults > 0  # the faulted half actually misbehaved
    assert latencies, "latency probe saw no frames"

    lat_ms = np.sort(np.array(latencies)) * 1e3
    p50 = float(np.percentile(lat_ms, 50))
    p99 = float(np.percentile(lat_ms, 99))
    sessions_per_s = N_DEVICES / wall
    frames_per_s = fleet.frames_decoded / wall

    # Loopback decode latency is sub-millisecond in the common case; a
    # generous ceiling still catches an event-loop stall or a queue that
    # stopped draining.
    assert p99 < 1000.0

    report = {
        "devices": N_DEVICES,
        "frames_per_device": FRAMES_PER_DEVICE,
        "samples_per_frame": SAMPLES_PER_FRAME,
        "faulty_devices": sum(1 for d in range(N_DEVICES) if d % 2 == 0),
        "faults_injected": faults,
        "wall_seconds": wall,
        "sessions_per_second": sessions_per_s,
        "frames_per_second": frames_per_s,
        "frames_decoded": fleet.frames_decoded,
        "frames_lost": fleet.lost_frames,
        "frames_stale": fleet.stale_frames,
        "frames_unaccounted": fleet.frames_unaccounted,
        "crc_errors": fleet.crc_errors,
        "latency_ms": {
            "p50": p50,
            "p99": p99,
            "max": float(lat_ms[-1]),
            "samples": int(lat_ms.size),
        },
        "reconciled": True,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print_rows(
        "PERF — gateway fleet: 40 devices, half faulted",
        [
            ("wall [s]", "(whole fleet)", f"{wall:.2f}"),
            ("sessions/s", "closed with BYE", f"{sessions_per_s:.1f}"),
            ("frames/s", "decoded", f"{frames_per_s:.0f}"),
            ("latency p50 [ms]", "send -> decode", f"{p50:.2f}"),
            ("latency p99 [ms]", "< 1000", f"{p99:.2f}"),
            (
                "loss accounted",
                "decoded+lost+unacc == sent",
                f"{fleet.lost_frames} lost, "
                f"{fleet.frames_unaccounted} unaccounted",
            ),
            ("faults injected", "> 0", f"{faults}"),
        ],
    )
