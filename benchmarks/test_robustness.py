"""ROBUST bench: field-condition robustness (Sec. 4's future field tests)."""

from conftest import print_rows, run_once

from repro.experiments import run_robustness


def test_robustness(benchmark):
    result = run_once(benchmark, run_robustness, duration_s=30.0)
    print_rows(
        "ROBUST — motion artifacts, thermal drift, hold-down servo "
        "(Sec. 4)",
        result.rows(),
    )
    # Artifact defense: every injected event overlapped by flags, few
    # false flags elsewhere.
    assert result.artifact_sensitivity > 0.8
    assert result.artifact_specificity > 0.7
    # Rejection must not make the features worse.
    assert abs(result.sys_error_with_rejection_mmhg) <= (
        abs(result.sys_error_no_rejection_mmhg) + 1.0
    )
    # Thermal drift: sub-percent gain drift, sub-mmHg error — stability
    # is adequate without continuous recalibration…
    assert abs(result.warmup_gain_drift_fraction) < 0.02
    assert result.drift_error_uncorrected_mmhg < 2.0
    # …so the policy re-cuffs on its time floor only.
    assert result.recalibrations_in_30min >= 1
    # Servo: lands within 10 % of the true transmission optimum.
    error = abs(result.servo_found_pa - result.servo_true_optimum_pa)
    assert error < 0.1 * result.servo_true_optimum_pa
