"""PRESS-LIN bench: pressure-path linearity budget."""

import numpy as np
from conftest import print_rows, run_once

from repro.experiments import run_pressure_linearity


def test_pressure_linearity(benchmark):
    result = run_once(benchmark, run_pressure_linearity, n_fft=2048)
    print_rows(
        "PRESS-LIN — transducer linearity vs converter noise",
        result.rows(),
    )
    # The negative result, asserted: harmonic products never rise above
    # -25 dBc anywhere in the drive range (they are noise, tracking SNR),
    assert np.all(result.thd_db < -25.0)
    # while the analytic membrane INL stays below 0.05 % even at 40 kPa
    # and below 0.001 % at physiologic drive.
    assert result.membrane_inl[0] < 1e-5
    assert result.membrane_inl[-1] < 5e-4
    # INL grows with amplitude (the physics is nonlinear, just tiny).
    assert np.all(np.diff(result.membrane_inl) > 0)
