"""ABL-SPACE bench: the (order x OSR) design grid and its Pareto front."""

import numpy as np
from conftest import print_rows, run_once

from repro.experiments import run_design_space


def test_ablation_design_space(benchmark):
    result = run_once(benchmark, run_design_space, n_out=2048)
    print_rows(
        "ABL-SPACE — ENOB over loop order x OSR (ideal loops)",
        result.rows(),
    )
    # Shape: ENOB grows monotonically along both axes…
    for i in range(len(result.orders)):
        assert np.all(np.diff(result.enob[i]) > 0), f"order {result.orders[i]}"
    for j in range(result.osrs.size):
        assert np.all(np.diff(result.enob[:, j]) > 0), f"OSR {result.osrs[j]}"
    # …every Pareto point is 3rd order (it dominates at equal rate)…
    front = result.pareto_front()
    assert all(p[2] == 3 for p in front)
    # …and the paper's (2, 128) point supports >= 12 bits, explaining the
    # chip's 12-bit interface choice.
    paper_enob = result.enob[result.orders.index(2),
                             int(np.argmin(np.abs(result.osrs - 128)))]
    assert paper_enob > 12.0
