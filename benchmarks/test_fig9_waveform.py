"""FIG9 bench: the continuous blood-pressure recording with cuff anchor.

Paper: sensor on the wrist, continuous relative waveform, absolute scale
from one hand-cuff systolic/diastolic reading. Ground truth is exact
here, so the bench reports the errors the paper could only plot.
"""

from conftest import print_rows, run_once

from repro.experiments import run_fig9


def test_fig9_waveform(benchmark):
    result = run_once(benchmark, run_fig9, duration_s=16.0)
    print_rows(
        "FIG9 — continuous BP waveform, cuff-calibrated (Fig. 9)",
        result.rows(),
    )
    r = result.result
    # Shape: calibrated sys/dia within a few mmHg of ground truth.
    assert abs(r.systolic_error_mmhg) < 5.0
    assert abs(r.diastolic_error_mmhg) < 5.0
    assert r.waveform_rms_error_mmhg() < 4.0
    # Morphology: the waveform is a usable pulse (notch + correct rate).
    assert result.dicrotic_notch_detected
    assert abs(result.pulse_rate_error_bpm) < 3.0
    assert r.quality.acceptable


def test_fig9_off_axis_placement(benchmark):
    """Placement robustness: 1 mm lateral misplacement still yields a
    calibratable waveform (the array's purpose)."""
    result = run_once(
        benchmark, run_fig9, duration_s=12.0, lateral_offset_m=1.0e-3
    )
    print_rows(
        "FIG9b — same protocol, 1 mm lateral placement error",
        result.rows(),
    )
    assert abs(result.result.systolic_error_mmhg) < 6.0
    assert result.result.quality.acceptable
