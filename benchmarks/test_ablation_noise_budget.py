"""ABL-NOISE bench: the analog budget behind the 72 dB."""

from conftest import print_rows, run_once

from repro.experiments import run_noise_budget


def test_ablation_noise_budget(benchmark):
    result = run_once(benchmark, run_noise_budget, n_fft=2048)
    print_rows(
        "ABL-NOISE — analog noise budget (per-contributor SNR)",
        result.rows(),
    )
    ideal_12b, ideal_float = result.by_label("ideal loop")
    # The 12-bit interface is the binding constraint: the production path
    # barely moves across analog configurations…
    for label in result.labels:
        snr_12b, _ = result.by_label(label)
        assert abs(snr_12b - ideal_12b) < 4.0
    # …while the float path exposes each contributor.
    _, ktc_float = result.by_label("kT/C only (C = 5 fF)")
    _, ref_float = result.by_label("reference noise only (1 mVref)")
    _, cmp_float = result.by_label("comparator offset only (100 mV)")
    assert ktc_float < ideal_float - 5.0  # thermal noise costs
    assert ref_float < ideal_float - 5.0  # un-shaped reference costs
    # Comparator offset is noise-shaped: nearly free.
    assert abs(cmp_float - ideal_float) < 3.0
