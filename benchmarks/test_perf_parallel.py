"""PERF bench: multi-core experiment executor scaling.

Writes ``BENCH_parallel.json`` at the repo root: wall time, speedup,
parallel efficiency and precompute-cache hit rate for the population
protocol (N=16 subjects) and the design-space grid at jobs in {1, 2, 4}.
The acceptance gates are:

* bit-identical results for every worker count (always enforced),
* executor telemetry reconciling for every run (always enforced),
* >= 2.5x population speedup at jobs=4 — enforced only on runners with
  at least 4 cores (a single-core runner cannot scale; it still records
  its numbers so the multi-core CI lane has a baseline to compare).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import print_rows

from repro.experiments import run_design_space, run_population

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
JOBS_SWEEP = (1, 2, 4)
N_SUBJECTS = 16
POP_DURATION_S = 6.0
DESIGN_N_OUT = 256


def update_bench(section: dict) -> None:
    """Merge keys into BENCH_parallel.json, preserving other sections."""
    report = {}
    if BENCH_PATH.exists():
        try:
            report = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(section)
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")


def _sweep(run, fingerprint) -> tuple[dict, dict]:
    """Time one harness at every jobs value; assert identity + telemetry.

    ``fingerprint`` maps a result to the arrays that must be
    bit-identical across worker counts.
    """
    runs = {}
    for jobs in JOBS_SWEEP:
        start = time.perf_counter()
        result = run(jobs)
        wall = time.perf_counter() - start
        result.telemetry.reconcile()
        runs[jobs] = {
            "wall_seconds": wall,
            "speedup": runs[1]["wall_seconds"] / wall if jobs > 1 else 1.0,
            "parallel_efficiency": (
                runs[1]["wall_seconds"] / wall / jobs if jobs > 1 else 1.0
            ),
            "cache_hit_rate": result.telemetry.cache_hit_rate(),
            "workers_used": result.telemetry.workers_used,
            # The executor clamps to the core budget by default; record
            # both sides so the report shows when (and how) it kicked in.
            "jobs_requested": result.telemetry.jobs_requested,
            "jobs_effective": result.telemetry.jobs,
            "clamped": result.telemetry.jobs
            < (result.telemetry.jobs_requested or result.telemetry.jobs),
        }
        if jobs == 1:
            reference = fingerprint(result)
        else:
            for ref, got in zip(reference, fingerprint(result)):
                assert np.array_equal(ref, got)
    return runs, {"bit_identical": True}


def test_perf_parallel(benchmark):
    def full_sweep():
        population, _ = _sweep(
            lambda jobs: run_population(
                n_subjects=N_SUBJECTS, duration_s=POP_DURATION_S, jobs=jobs
            ),
            lambda r: (
                r.systolic_errors_mmhg,
                r.diastolic_errors_mmhg,
                r.waveform_rms_mmhg,
            ),
        )
        design, _ = _sweep(
            lambda jobs: run_design_space(n_out=DESIGN_N_OUT, jobs=jobs),
            lambda r: (r.enob, r.conversion_rates_hz),
        )
        return population, design

    population, design = benchmark.pedantic(
        full_sweep, rounds=1, iterations=1
    )

    cores = os.cpu_count() or 1
    pop4 = population[4]
    update_bench(
        {
            "cpu_cores": cores,
            "population": {
                "n_subjects": N_SUBJECTS,
                "duration_s": POP_DURATION_S,
                "per_jobs": population,
                "bit_identical": True,
            },
            "design_space": {
                "n_out": DESIGN_N_OUT,
                "per_jobs": design,
                "bit_identical": True,
            },
        }
    )

    print_rows(
        f"PERF — executor scaling on {cores} core(s) "
        f"(population N={N_SUBJECTS}, design-space grid)",
        [
            (
                "population wall jobs=1/2/4 [s]",
                "(serial baseline first)",
                "/".join(
                    f"{population[j]['wall_seconds']:.1f}" for j in JOBS_SWEEP
                ),
            ),
            (
                "population speedup at jobs=4",
                ">= 2.5x on >= 4 cores",
                f"{pop4['speedup']:.2f}x",
            ),
            (
                "population efficiency at jobs=4",
                "(speedup / jobs)",
                f"{pop4['parallel_efficiency'] * 100:.0f}%",
            ),
            (
                "population cache hit rate",
                "(worker-side FIR+membrane)",
                f"{pop4['cache_hit_rate'] * 100:.0f}%",
            ),
            (
                "design-space speedup at jobs=4",
                "(grid of 15 cells)",
                f"{design[4]['speedup']:.2f}x",
            ),
            ("bit-identical across jobs", "yes", "yes"),
        ],
    )

    # Scaling is only assertable where the silicon can scale; the
    # bit-identity and telemetry gates above ran unconditionally.
    if cores >= 4:
        assert pop4["speedup"] >= 2.5
    # Worker-side chain construction must hit the warm precompute cache.
    assert pop4["cache_hit_rate"] > 0.5
