"""ABL-OSR bench: resolution vs conversion rate (Sec. 4 outlook).

Sweeps the OSR at fixed 128 kHz modulator clock: each halving of OSR
doubles the conversion rate and costs ~2.5 bits (2nd-order loop). Includes
the 1st-order-loop comparison from DESIGN.md §5.
"""

import numpy as np
import pytest
from conftest import print_rows, run_once

from repro.experiments import run_osr_ablation


def test_ablation_osr(benchmark):
    result = run_once(benchmark, run_osr_ablation, n_out=2048)
    print_rows(
        "ABL-OSR — ENOB vs OSR / conversion rate (Sec. 4 outlook)",
        result.rows(),
    )
    # Shape: ~2.5 bit/octave for the paper's 2nd-order loop, ~1.5 for the
    # 1st-order baseline; 2nd order wins everywhere.
    assert result.slope_2nd_bits_per_octave == pytest.approx(2.5, abs=0.6)
    assert result.slope_1st_bits_per_octave == pytest.approx(1.5, abs=0.5)
    assert (result.enob_2nd > result.enob_1st).all()
    # The paper's OSR-128 point supports >= 12-bit output resolution.
    idx = int(np.argmin(np.abs(result.osrs - 128)))
    assert result.enob_2nd[idx] > 12.0
