"""TAB-SPEC bench: the paper's prose specification table, re-measured.

Covers: 128 kS/s / OSR 128 / 1 kS/s / 500 Hz / 12 bit / 11.5 mW @ 5 V /
2.6 x 1.9 mm^2 die, plus the decimator-architecture ablation from
DESIGN.md §5.
"""

from conftest import print_rows, run_once

from repro.experiments import run_table_specs


def test_table_specs(benchmark):
    table = run_once(benchmark, run_table_specs, n_fft=4096)
    print_rows("TAB-SPEC — specification table (Secs. 2-3)", table.rows())
    assert table.output_rate_hz == 1000.0
    assert table.enob_bits > 11.0
    assert table.snr_db > 72.0
    assert abs(table.power_w - 11.5e-3) < 1e-9
    assert 350.0 < table.measured_cutoff_hz < 550.0
    assert table.array_span_ok
    # Ablation ordering: the 12-bit interface is the binding constraint;
    # both unquantized alternatives clear it.
    assert table.sinc_only_snr_db > table.snr_db
    assert table.brickwall_snr_db > table.snr_db
