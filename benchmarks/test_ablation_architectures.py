"""ABL-ARCH bench: higher-order and multi-bit routes (Sec. 4 outlook)."""

from conftest import print_rows, run_once

from repro.experiments import run_architecture_comparison


def test_ablation_architectures(benchmark):
    result = run_once(benchmark, run_architecture_comparison, n_out=2048)
    print_rows(
        "ABL-ARCH — modulator architecture comparison at OSR 128",
        result.rows(),
    )
    paper = result.by_label("2nd order, 1 bit (paper)")
    third = result.by_label("3rd order, 1 bit")
    mb_ideal = result.by_label("2nd order, 3 bit, ideal DAC")
    mb_fixed = result.by_label(
        "2nd order, 3 bit, 0.3% mismatch, fixed"
    )
    mb_dwa = result.by_label("2nd order, 3 bit, 0.3% mismatch, DWA")
    # Shapes: both upgrade routes beat the paper loop…
    assert third > paper + 10.0
    assert mb_ideal > paper + 3.0
    # …mismatch without shaping gives back most of the multi-bit gain…
    assert mb_fixed < mb_ideal - 8.0
    # …and DWA recovers it (first-order mismatch shaping).
    assert mb_dwa > mb_fixed + 8.0
    assert mb_dwa > mb_ideal - 3.0
