"""PERF bench: fast backend vs reference loop, batch vs streaming.

Two gates, both writing into ``BENCH_chain.json`` at the repo root so CI
and later sessions can track regressions:

* ``test_perf_chain`` — the full ΣΔ→CIC→FIR chain over one second of
  modulator clocks (128k samples, the paper's real-time unit of work) in
  both backends, bit-identity checked.
* ``test_perf_streaming`` — a 60 s monitoring acquisition through the
  chunked :class:`~repro.core.session.AcquisitionSession` in 0.25 s
  chunks: bit-identical to the batch ``record_pressure`` path, telemetry
  counters reconciling exactly, and tracemalloc peak memory bounded by
  the chunk size instead of the session duration.
"""

import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from conftest import print_rows

from repro.core.chain import ReadoutChain
from repro.core.monitor import BloodPressureMonitor
from repro.params import (
    PASCAL_PER_MMHG,
    NonidealityParams,
    SystemParams,
)
from repro.physiology.patient import VirtualPatient
from repro.sdm.fastpath import kernel_available
from repro.tonometry.contact import ContactModel
from repro.tonometry.coupling import TonometricCoupling
from repro.tonometry.placement import ArrayPlacement

N_MOD = 128_000  # 1 s at the paper's 128 kS/s modulator clock
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_chain.json"


def update_bench(section: dict) -> None:
    """Merge keys into BENCH_chain.json, preserving the other tests'."""
    report = {}
    if BENCH_PATH.exists():
        try:
            report = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(section)
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")


def make_chain(backend: str) -> ReadoutChain:
    params = SystemParams().replace(nonideality=NonidealityParams.ideal())
    return ReadoutChain(params, rng=np.random.default_rng(77), backend=backend)


def one_second_input() -> np.ndarray:
    t = np.arange(N_MOD) / 128e3
    return 0.5 * 2.5 * np.sin(2 * np.pi * 15.625 * t)


def timed_acquisition(backend: str, v: np.ndarray):
    chain = make_chain(backend)
    start = time.perf_counter()
    rec = chain.record_voltage(v)
    elapsed = time.perf_counter() - start
    return rec, elapsed


def test_perf_chain(benchmark):
    v = one_second_input()
    # Warm-up compiles the kernel outside the timed region.
    make_chain("fast").record_voltage(v[:1280])

    rec_ref, t_ref = timed_acquisition("reference", v)
    rec_fast, t_fast = benchmark.pedantic(
        timed_acquisition, args=("fast", v), rounds=1, iterations=1
    )
    speedup = t_ref / t_fast

    assert np.array_equal(rec_ref.codes, rec_fast.codes)
    assert rec_ref.lost_frames == rec_fast.lost_frames == 0

    update_bench(
        {
            "n_modulator_samples": N_MOD,
            "kernel_available": kernel_available(),
            "reference_seconds": t_ref,
            "fast_seconds": t_fast,
            "reference_msps": N_MOD / t_ref / 1e6,
            "fast_msps": N_MOD / t_fast / 1e6,
            "speedup": speedup,
            "bit_identical": True,
        }
    )

    print_rows(
        "PERF — 1 s acquisition through the full chain",
        [
            ("reference [s]", "(cycle-accurate loop)", f"{t_ref:.3f}"),
            ("fast [s]", "(compiled kernel)", f"{t_fast:.3f}"),
            (
                "throughput [MS/s]",
                ">= 0.128 for real time",
                f"{N_MOD / t_fast / 1e6:.1f}",
            ),
            ("speedup", ">= 10x (kernel)", f"{speedup:.1f}x"),
            ("bit-identical", "yes", "yes"),
        ],
    )

    # The fast path must beat real time regardless of the kernel; the
    # 10x acceptance floor applies when a C compiler is present.
    assert t_fast < 1.0
    if kernel_available():
        assert speedup >= 10.0


STREAM_DURATION_S = 60.0
STREAM_CHUNK_S = 0.25


def make_monitor(seed: int = 101) -> BloodPressureMonitor:
    """A Fig. 9-style monitor with paper-default (noisy) non-idealities."""
    params = SystemParams()
    rng = np.random.default_rng(seed)
    chain = ReadoutChain(params, rng=rng, backend="fast")
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG,
    )
    coupling = TonometricCoupling(
        chain.chip.array.geometry,
        contact,
        placement=ArrayPlacement(lateral_offset_m=0.5e-3),
        rng=rng,
    )
    return BloodPressureMonitor(chain, coupling)


def test_perf_streaming():
    """60 s acquisition, chunked vs batch: identical bits, bounded memory."""
    make_chain("fast").record_voltage(one_second_input()[:1280])  # warm up
    patient = VirtualPatient(rng=np.random.default_rng(55))
    truth = patient.record(
        duration_s=STREAM_DURATION_S + 1.0, sample_rate_hz=2000.0
    )

    # Batch path: materialize the whole 128 kHz field, convert in one go.
    monitor = make_monitor()
    tracemalloc.start()
    t0 = time.perf_counter()
    field = monitor._pressure_field(truth, 0.0, STREAM_DURATION_S)
    rec_batch = monitor.chain.record_pressure(field, element=1)
    t_batch = time.perf_counter() - t0
    peak_batch = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    field_bytes = field.nbytes
    del field

    # Streaming path: same acquisition in 0.25 s chunks, O(chunk) memory.
    monitor = make_monitor()
    tracemalloc.start()
    t0 = time.perf_counter()
    rec_stream, telemetry = monitor.record_streaming(
        truth, 0.0, STREAM_DURATION_S, element=1, chunk_s=STREAM_CHUNK_S
    )
    t_stream = time.perf_counter() - t0
    peak_stream = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    # -- acceptance: bit-identical output ------------------------------
    assert np.array_equal(rec_stream.codes, rec_batch.codes)
    assert rec_stream.lost_samples == rec_batch.lost_samples == 0

    # -- acceptance: telemetry reconciles exactly -----------------------
    telemetry.reconcile(lossless=True)
    r = telemetry.decimation_factor
    assert telemetry.bits_out == telemetry.mod_samples_in
    assert telemetry.mod_samples_in == int(STREAM_DURATION_S * 128_000)
    assert (
        telemetry.mod_samples_in
        == r * (telemetry.words_filtered - 1) + 1 + telemetry.filter_remainder
    )
    assert 0 <= telemetry.filter_remainder < r
    assert telemetry.frames_framed == (
        telemetry.frames_decoded + telemetry.lost_frames
    )
    assert telemetry.words_delivered == (
        telemetry.words_filtered - telemetry.words_suppressed
    )
    assert telemetry.chunks == int(STREAM_DURATION_S / STREAM_CHUNK_S)

    # -- acceptance: peak memory bounded by the chunk, not the duration --
    chunk_bytes = int(STREAM_CHUNK_S * 128_000) * 4 * 8
    assert telemetry.peak_chunk_bytes == chunk_bytes
    # The pipeline's per-chunk working set (capacitances, loop input,
    # noise draws, bitstream) is a small multiple of the chunk itself;
    # 48x leaves headroom while staying far below any O(duration) figure
    # (the batch field alone is ~240x the chunk).
    assert peak_stream < 48 * chunk_bytes
    assert peak_stream < peak_batch / 4

    update_bench(
        {
            "streaming": {
                "duration_s": STREAM_DURATION_S,
                "chunk_s": STREAM_CHUNK_S,
                "chunks": telemetry.chunks,
                "batch_seconds": t_batch,
                "streaming_seconds": t_stream,
                "batch_peak_bytes": peak_batch,
                "streaming_peak_bytes": peak_stream,
                "batch_field_bytes": field_bytes,
                "chunk_bytes": chunk_bytes,
                "pipeline_msps": telemetry.throughput_msps(),
                "stage_seconds": telemetry.stage_seconds,
                "bit_identical": True,
            }
        }
    )

    print_rows(
        "PERF — 60 s monitoring acquisition, batch vs 0.25 s chunks",
        [
            ("batch wall [s]", "(whole-field)", f"{t_batch:.2f}"),
            ("streaming wall [s]", "(chunked)", f"{t_stream:.2f}"),
            ("batch peak [MiB]", "O(duration)", f"{peak_batch / 2**20:.0f}"),
            (
                "streaming peak [MiB]",
                "O(chunk)",
                f"{peak_stream / 2**20:.1f}",
            ),
            (
                "pipeline throughput",
                ">= 0.128 MS/s real time",
                f"{telemetry.throughput_msps():.1f} MS/s",
            ),
            ("bit-identical", "yes", "yes"),
        ],
    )
