"""PERF bench: fast backend vs reference loop on a 1 s acquisition.

Times the full ΣΔ→CIC→FIR chain over one second of modulator clocks
(128k samples, the paper's real-time unit of work) in both backends,
checks the fast path is bit-identical under ideal non-idealities, and
writes the measured throughput to ``BENCH_chain.json`` at the repo root
so CI and later sessions can track regressions.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import print_rows

from repro.core.chain import ReadoutChain
from repro.params import NonidealityParams, SystemParams
from repro.sdm.fastpath import kernel_available

N_MOD = 128_000  # 1 s at the paper's 128 kS/s modulator clock
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_chain.json"


def make_chain(backend: str) -> ReadoutChain:
    params = SystemParams().replace(nonideality=NonidealityParams.ideal())
    return ReadoutChain(params, rng=np.random.default_rng(77), backend=backend)


def one_second_input() -> np.ndarray:
    t = np.arange(N_MOD) / 128e3
    return 0.5 * 2.5 * np.sin(2 * np.pi * 15.625 * t)


def timed_acquisition(backend: str, v: np.ndarray):
    chain = make_chain(backend)
    start = time.perf_counter()
    rec = chain.record_voltage(v)
    elapsed = time.perf_counter() - start
    return rec, elapsed


def test_perf_chain(benchmark):
    v = one_second_input()
    # Warm-up compiles the kernel outside the timed region.
    make_chain("fast").record_voltage(v[:1280])

    rec_ref, t_ref = timed_acquisition("reference", v)
    rec_fast, t_fast = benchmark.pedantic(
        timed_acquisition, args=("fast", v), rounds=1, iterations=1
    )
    speedup = t_ref / t_fast

    assert np.array_equal(rec_ref.codes, rec_fast.codes)
    assert rec_ref.lost_frames == rec_fast.lost_frames == 0

    report = {
        "n_modulator_samples": N_MOD,
        "kernel_available": kernel_available(),
        "reference_seconds": t_ref,
        "fast_seconds": t_fast,
        "reference_msps": N_MOD / t_ref / 1e6,
        "fast_msps": N_MOD / t_fast / 1e6,
        "speedup": speedup,
        "bit_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print_rows(
        "PERF — 1 s acquisition through the full chain",
        [
            ("reference [s]", "(cycle-accurate loop)", f"{t_ref:.3f}"),
            ("fast [s]", "(compiled kernel)", f"{t_fast:.3f}"),
            (
                "throughput [MS/s]",
                ">= 0.128 for real time",
                f"{N_MOD / t_fast / 1e6:.1f}",
            ),
            ("speedup", ">= 10x (kernel)", f"{speedup:.1f}x"),
            ("bit-identical", "yes", "yes"),
        ],
    )

    # The fast path must beat real time regardless of the kernel; the
    # 10x acceptance floor applies when a C compiler is present.
    assert t_fast < 1.0
    if kernel_available():
        assert speedup >= 10.0
