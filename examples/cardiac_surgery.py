"""Epicardial application: the sensor on the beating heart.

The paper's Sec. 1: "an invasive application, e.g., on the beating heart
during surgery is also possible." Surgically, the chip rests directly on
the ventricular epicardium: no skin, no tissue attenuation, a ventricular
(not arterial) pressure shape — systolic plateau, near-zero diastole —
and surgical heart rates. This example runs the identical readout chain
and calibration protocol in that regime and compares the recovered
ventricular waveform against ground truth.

Run:  python examples/cardiac_surgery.py
"""

import numpy as np

from repro import BloodPressureMonitor, ReadoutChain, VirtualPatient
from repro.baselines import ArterialLineReference
from repro.params import (
    PASCAL_PER_MMHG,
    PatientParams,
    paper_defaults,
)
from repro.physiology import ventricular_template
from repro.tonometry import ContactModel, TonometricCoupling
from repro.params import TissueParams


def main() -> None:
    params = paper_defaults()
    rng = np.random.default_rng(2005)

    # Left ventricle during surgery: 110/6 mmHg at 80 bpm, ventricular
    # waveform shape.
    lv = PatientParams(
        systolic_mmhg=110.0,
        diastolic_mmhg=6.0,
        heart_rate_bpm=80.0,
        respiration_depth_mmhg=1.0,  # ventilated patient
    )
    patient = VirtualPatient(lv, template=ventricular_template(), rng=rng)

    # Direct epicardial contact: the "artery" IS the surface. Near-zero
    # tissue depth and a broad contact mean transmission ~unity and no
    # placement sensitivity.
    epicardial_tissue = TissueParams(
        artery_radius_m=10e-3,  # the ventricle, not a 1 mm vessel
        artery_depth_m=0.5e-3,  # a film of epicardial fat at most
        surface_spread_m=10e-3,
    )
    lv_map = 6.0 + (110.0 - 6.0) / 3.0
    contact = ContactModel(
        contact=params.contact,
        tissue=epicardial_tissue,
        mean_arterial_pressure_pa=lv_map * PASCAL_PER_MMHG,
        transmission_width_fraction=1.5,  # forgiving: direct contact
    )
    chain = ReadoutChain(params, rng=rng)
    coupling = TonometricCoupling(
        chain.chip.array.geometry,
        contact,
        contact_heterogeneity=0.1,
        rng=rng,
    )
    # No cuff in the OR: calibrate against the arterial/ventricular line
    # already in place (a cuff physically cannot reach a 6 mmHg
    # diastole, and the monitor's cuff model correctly refuses to try).
    monitor = BloodPressureMonitor(
        chain, coupling, cuff=ArterialLineReference()
    )

    print("running 12 s epicardial session (LV 110/6 mmHg at 80 bpm)...")
    result = monitor.measure(patient, duration_s=12.0, rng=rng)
    print()
    print(result.summary())

    # Ventricular morphology: unlike the radial pulse, diastole sits near
    # zero for ~60 % of the beat.
    wave = result.calibrated_mmhg[2000:10000]
    below_20 = float(np.mean(wave < 20.0))
    print()
    print(f"fraction of the beat below 20 mmHg : {below_20 * 100:.0f} % "
          "(ventricular signature; a radial pulse never goes there)")
    print(f"recovered systolic plateau          : {np.percentile(wave, 98):.0f} mmHg")
    print(f"recovered diastolic floor           : {np.percentile(wave, 5):.0f} mmHg")


if __name__ == "__main__":
    main()
