"""Quickstart: one complete blood-pressure monitoring session.

Builds the paper-default system (2x2 membrane array, sigma-delta readout,
FPGA decimation), couples it to a virtual patient through the tonometric
contact model, runs the scan-select-record-calibrate protocol of Sec. 3.2
and prints the session report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BloodPressureMonitor, ReadoutChain, VirtualPatient
from repro.params import PASCAL_PER_MMHG, paper_defaults
from repro.tonometry import ArrayPlacement, ContactModel, TonometricCoupling


def main() -> None:
    params = paper_defaults()
    rng = np.random.default_rng(2004)

    # The chip + FPGA + USB chain.
    chain = ReadoutChain(params, rng=rng)
    print(chain.chip.describe())
    print()

    # A healthy virtual subject (120/80 mmHg at 70 bpm).
    patient = VirtualPatient(rng=rng)

    # Tonometric contact: hold-down near mean arterial pressure, the
    # array placed 0.5 mm off the artery axis (a realistic placement
    # error the 2x2 array is there to absorb).
    map_pa = (80.0 + 40.0 / 3.0) * PASCAL_PER_MMHG
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=map_pa,
    )
    coupling = TonometricCoupling(
        chain.chip.array.geometry,
        contact,
        placement=ArrayPlacement(lateral_offset_m=0.5e-3),
        rng=rng,
    )

    monitor = BloodPressureMonitor(chain, coupling)
    print("running 16 s monitoring session (scan + record + calibrate)...")
    result = monitor.measure(patient, duration_s=16.0, rng=rng)
    print()
    print(result.summary())
    print()
    print(result.calibration.describe())

    # A few beats of the calibrated waveform, as numbers.
    t = result.times_s
    window = (t > 4.0) & (t < 6.0)
    wave = result.calibrated_mmhg[window]
    print()
    print(
        f"calibrated waveform, 4-6 s: min {wave.min():.1f}, "
        f"max {wave.max():.1f} mmHg over {window.sum()} samples at 1 kS/s"
    )


if __name__ == "__main__":
    main()
