"""Vessel localization with a larger array (Sec. 2's modularity claim).

"This can also be used for localizing blood vessels, buried in tissue" —
and the multiplexed design "can be easily extended to larger array sizes".
This example builds an 8x8 array chip (same 150 um pitch), scans it over
a virtual wrist whose artery is offset from the array center, prints the
pulsatile-amplitude map, and estimates the artery's position from it.

Run:  python examples/vessel_localization.py
"""

import numpy as np

from repro.mems.geometry import ArrayGeometry
from repro.params import ArrayParams, PASCAL_PER_MMHG, paper_defaults
from repro.physiology import TissueTransfer, VirtualPatient
from repro.tonometry import ArrayPlacement, ContactModel, TonometricCoupling


def main() -> None:
    params = paper_defaults()
    rng = np.random.default_rng(88)

    # An 8x8 array: 64 elements at 150 um pitch (1.05 mm field).
    array_params = ArrayParams(rows=8, cols=8, membrane=params.array.membrane)
    geometry = ArrayGeometry(array_params)

    # Artery offset 0.4 mm from the array center line.
    true_offset = -0.4e-3
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG,
    )
    coupling = TonometricCoupling(
        geometry,
        contact,
        tissue=TissueTransfer(params.tissue),
        placement=ArrayPlacement(lateral_offset_m=-true_offset),
        contact_heterogeneity=0.1,
        rng=rng,
    )

    # Per-element pulsatile amplitude over a few beats of the patient.
    patient = VirtualPatient(rng=rng)
    record = patient.record(duration_s=5.0, sample_rate_hz=200.0)
    field = coupling.element_pressures_pa(record.pressure_pa)
    amplitudes = field.max(axis=0) - field.min(axis=0)
    amp_map = amplitudes.reshape(8, 8)

    print("pulsatile amplitude map [kPa] (artery runs vertically):")
    for r in range(8):
        print("  " + " ".join(f"{amp_map[r, c] / 1e3:5.2f}" for c in range(8)))

    # Localize: column-average, log-parabola fit (Gaussian profile).
    centers = geometry.element_centers_m()
    xs = np.unique(np.round(centers[:, 0], 12))
    col_amp = amp_map.mean(axis=0)
    coeffs = np.polyfit(xs, np.log(col_amp), 2)
    est = -coeffs[1] / (2.0 * coeffs[0])

    print()
    print(f"true artery offset     : {true_offset * 1e3:+.3f} mm")
    print(f"estimated from the map : {est * 1e3:+.3f} mm")
    print(f"localization error     : {abs(est - true_offset) * 1e6:.0f} um "
          f"(array pitch is 150 um)")

    best = int(np.argmax(amplitudes))
    row, col = divmod(best, 8)
    print(f"strongest element      : ({row}, {col}) — the one the readout "
          "would lock onto")


if __name__ == "__main__":
    main()
