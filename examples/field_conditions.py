"""Field conditions: servo, motion artifacts, drift — and pulse morphology.

What the paper's Sec. 4 field tests would have faced, end to end:

1. The hold-down servo searches the applanation optimum (no clinician).
2. A monitoring record is contaminated with taps and wrist flexion; the
   artifact detector flags and excises them.
3. The warm-up thermal drift is tracked and a recalibration decision made.
4. From the clean record, clinical pulse-morphology indices are computed
   — the payoff of having a *continuous* waveform at all.

Run:  python examples/field_conditions.py
"""

import numpy as np

from repro.calibration import (
    ArtifactDetector,
    analyze_morphology,
    detect_beats,
    score_against_truth,
)
from repro.mems.thermal import ThermalMembraneModel, ThermalState
from repro.params import PASCAL_PER_MMHG
from repro.physiology import MotionArtifactGenerator, VirtualPatient
from repro.tonometry import ContactModel, HoldDownServo


def main() -> None:
    rng = np.random.default_rng(11)
    fs = 250.0
    duration = 40.0

    # --- 1. Hold-down servo ------------------------------------------------
    contact = ContactModel(
        mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG
    )
    servo_rng = np.random.default_rng(12)

    def oracle(hold_pa: float) -> float:
        return float(
            contact.transmission(hold_pa) * 40.0
            + 0.2 * servo_rng.standard_normal()
        )

    servo = HoldDownServo()
    found = servo.search(oracle)
    print("1. applanation servo")
    print(
        f"   optimum found at {found.optimal_hold_down_pa / 1e3:.2f} kPa "
        f"(true: {contact.optimal_hold_down_pa / 1e3:.2f} kPa), "
        f"{found.refinement_steps} refinement steps"
    )
    pressures, amplitudes = found.transmission_curve()
    bar = "".join(
        "#" if a > 0.8 * amplitudes.max() else "+" if a > 0.4 * amplitudes.max() else "."
        for a in amplitudes
    )
    print(f"   sweep {pressures[0]/1e3:.0f}..{pressures[-1]/1e3:.0f} kPa: [{bar}] "
          "(inverted-U transmission)")

    # --- 2. Motion artifacts --------------------------------------------------
    patient = VirtualPatient(rng=rng)
    truth = patient.record(duration_s=duration, sample_rate_hz=fs)
    artifacts = MotionArtifactGenerator(
        tap_rate_per_min=8.0, flexion_rate_per_min=3.0
    ).generate(duration, fs, rng=np.random.default_rng(13))
    contaminated = truth.pressure_mmhg + artifacts.pressure_mmhg

    detector = ArtifactDetector()
    report = detector.detect(contaminated, fs)
    sens, spec = score_against_truth(report, artifacts.contaminated_mask())
    print()
    print("2. motion artifacts")
    print(
        f"   {len(artifacts.events)} events injected; detector flagged "
        f"{report.fraction_flagged * 100:.1f} % of samples "
        f"(sensitivity {sens:.2f}, specificity {spec:.2f})"
    )

    # --- 3. Thermal drift -------------------------------------------------------
    thermal = ThermalMembraneModel()
    state = ThermalState()
    drift = thermal.gain_drift_over_warmup(
        state, np.array([0.0, 60.0, 300.0, 1800.0])
    )
    print()
    print("3. thermal drift (sensor warming 23 C -> 33 C)")
    for t, d in zip((0, 60, 300, 1800), drift):
        print(f"   t = {t:>5d} s: gain drift {d * 100:+.3f} % "
              f"(~{abs(d) * 40:.2f} mmHg of pulse-pressure error)")

    # --- 4. Morphology from the clean beats only ----------------------------------
    # Beats overlapping any flagged sample are excluded from the ensemble
    # (patching samples would distort the template).
    features = detect_beats(contaminated, fs)
    morphology = analyze_morphology(
        contaminated, fs, features, exclude_mask=report.mask
    )
    print()
    print("4. pulse morphology (ensemble of "
          f"{features.n_beats} beats)")
    print(f"   upstroke time     : {morphology.upstroke_time_s * 1e3:.0f} ms")
    print(f"   dP/dt max         : {morphology.dpdt_max:.0f} mmHg/s")
    print(f"   dicrotic notch    : phase {morphology.notch_phase:.2f}, "
          f"depth {morphology.notch_depth_fraction * 100:.0f} % of pulse")
    if np.isfinite(morphology.augmentation_index):
        print(f"   augmentation index: {morphology.augmentation_index:.2f}")


if __name__ == "__main__":
    main()
