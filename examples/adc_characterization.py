"""ADC characterization through the voltage test input (the Fig. 7 path).

The chip's differential voltage interface lets the converter be measured
independently of the transducer (Sec. 3). This example reproduces that
measurement: a near-full-scale coherent sine, the two-stage decimation to
1 kS/s / 12 bit, and the resulting spectrum — printed as an ASCII plot
with the SNR/ENOB numbers of Fig. 7.

Run:  python examples/adc_characterization.py
"""

import numpy as np

from repro.experiments import run_fig7


def ascii_spectrum(freqs: np.ndarray, db: np.ndarray, n_cols: int = 64,
                   n_rows: int = 16, floor_db: float = -120.0) -> str:
    """Render a log-magnitude spectrum as ASCII art."""
    edges = np.linspace(freqs[1], freqs[-1], n_cols + 1)
    column_db = np.full(n_cols, floor_db)
    for k in range(n_cols):
        mask = (freqs >= edges[k]) & (freqs < edges[k + 1])
        if mask.any():
            column_db[k] = max(float(db[mask].max()), floor_db)
    lines = []
    levels = np.linspace(0.0, floor_db, n_rows)
    for level in levels:
        row = "".join("#" if c >= level else " " for c in column_db)
        lines.append(f"{level:7.1f} dB |{row}|")
    axis = f"{'':11}+{'-' * n_cols}+"
    label = (
        f"{'':12}{edges[0]:<10.0f}{'Hz':^{n_cols - 20}}{edges[-1]:>10.0f}"
    )
    return "\n".join(lines + [axis, label])


def main() -> None:
    print("running the Fig. 7 tone test (15.625 Hz, -1.9 dBFS)...")
    result = run_fig7(n_fft=4096)

    print()
    print("paper vs measured:")
    for quantity, paper, measured in result.rows():
        print(f"  {quantity:<28} {paper:<22} {measured}")

    freqs, db = result.spectrum_db()
    print()
    print("output spectrum (dB re tone, 0-500 Hz):")
    print(ascii_spectrum(freqs, db))
    print()
    print(result.analysis.summary())


if __name__ == "__main__":
    main()
