"""Modulator design-space exploration: what a second silicon spin buys.

The paper's outlook wants more resolution and a faster conversion rate.
This example maps the whole (loop order x OSR) grid, prints the ENOB
table and the Pareto front, and shows the two concrete upgrade paths:
a 3rd-order loop and a 3-bit quantizer with DWA.

Run:  python examples/architecture_explorer.py
"""

import numpy as np

from repro.experiments import run_architecture_comparison, run_design_space


def main() -> None:
    print("mapping the (order x OSR) grid (ideal loops; ~5 s)...")
    space = run_design_space(n_out=1024)

    print()
    print("ENOB grid [bits]  (rows: loop order; columns: OSR)")
    header = "order\\OSR " + "".join(f"{int(o):>7d}" for o in space.osrs)
    print("  " + header)
    for i, order in enumerate(space.orders):
        cells = "".join(f"{space.enob[i, j]:>7.1f}" for j in range(space.osrs.size))
        print(f"  {order:<9d}{cells}")
    print(
        "  conv.rate " + "".join(
            f"{space.conversion_rates_hz[j]/1000:>6.1f}k"
            for j in range(space.osrs.size)
        )
    )

    print()
    print("Pareto front (conversion rate vs ENOB):")
    for rate, enob, order, osr in space.pareto_front():
        print(f"  {rate:7.0f} S/s -> {enob:5.1f} bit   (order {order}, OSR {osr})")

    print()
    print("paper's operating point: order 2, OSR 128 -> "
          f"{space.enob[space.orders.index(2), int(np.argmin(np.abs(space.osrs - 128)))]:.1f} bit "
          "modulator capability (the chip exports 12 of them)")

    print()
    print("upgrade routes with implementation realities (~5 s)...")
    arch = run_architecture_comparison(n_out=1024)
    for quantity, _, measured in arch.rows():
        print(f"  {quantity:<55} {measured}")
    print()
    print("moral: the 3-bit route needs mismatch shaping (DWA) to deliver;")
    print("the 3rd-order route needs nothing but a smaller stable range.")


if __name__ == "__main__":
    main()
