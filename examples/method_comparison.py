"""Cuff vs tonometer vs catheter through a blood-pressure transient.

The paper's introduction in one experiment: a 25 mmHg hypertensive
transient sweeps through a 2-minute record; the intermittent cuff samples
it twice, the (invasive) catheter and the (non-invasive) tonometer track
it continuously. Prints the tracking table and an ASCII trend plot.

Run:  python examples/method_comparison.py
"""

import numpy as np

from repro.experiments import run_baseline_comparison


def ascii_trends(times, series, labels, n_cols=72, n_rows=14):
    lo = min(float(np.min(s)) for s in series)
    hi = max(float(np.max(s)) for s in series)
    grid = [[" "] * n_cols for _ in range(n_rows)]
    marks = "*co."  # truth, tonometer, cuff, catheter
    for s, mark in zip(series, marks):
        resampled = np.interp(
            np.linspace(times[0], times[-1], n_cols), times, s
        )
        for x, value in enumerate(resampled):
            y = int((hi - value) / (hi - lo + 1e-12) * (n_rows - 1))
            grid[y][x] = mark
    lines = [f"{hi:6.1f} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("       |" + "".join(row))
    lines.append(f"{lo:6.1f} |" + "".join(grid[-1]))
    lines.append("       +" + "-" * n_cols)
    lines.append(
        f"        0 s{'':{n_cols - 16}}{times[-1]:.0f} s   "
    )
    legend = "  ".join(f"{m} = {l}" for m, l in zip(marks, labels))
    lines.append("        " + legend)
    return "\n".join(lines)


def main() -> None:
    print("running the 2-minute three-method comparison "
          "(full-chain tonometer windows; ~10 s)...")
    result = run_baseline_comparison(duration_s=120.0)

    print()
    for quantity, paper, measured in result.rows():
        print(f"  {quantity:<34} {paper:<40} {measured}")

    print()
    print("systolic trajectory [mmHg]:")
    print(
        ascii_trends(
            result.times_s,
            [
                result.truth_mmhg,
                result.tonometer_mmhg,
                result.cuff_mmhg,
                result.catheter_mmhg,
            ],
            ["truth", "tonometer (this work)", "cuff", "catheter"],
        )
    )


if __name__ == "__main__":
    main()
